#include "graph/wpg_builder.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>
#include <vector>

#include "spatial/grid_index.h"

namespace nela::graph {

namespace {

util::Status ValidateParams(const WpgBuildParams& params) {
  if (params.delta <= 0.0) {
    return util::InvalidArgumentError("delta must be positive");
  }
  if (params.cap_peers && params.max_peers == 0) {
    return util::InvalidArgumentError("max_peers must be positive");
  }
  if (params.measure == ProximityMeasure::kTdoaBucket &&
      params.tdoa_levels == 0) {
    return util::InvalidArgumentError("tdoa_levels must be positive");
  }
  return util::Status::Ok();
}

double TdoaWeight(const data::Dataset& dataset, VertexId u, VertexId v,
                  const WpgBuildParams& params) {
  // Time-difference-of-arrival resolves distance directly; quantize it
  // into 1..tdoa_levels buckets (symmetric, so both devices agree without
  // negotiation).
  const double distance = geo::Distance(dataset.point(u), dataset.point(v));
  const double fraction = std::min(distance / params.delta, 1.0);
  return std::max<double>(1.0, std::ceil(fraction * params.tdoa_levels));
}

}  // namespace

util::Result<Wpg> BuildWpg(const data::Dataset& dataset,
                           const WpgBuildParams& params,
                           util::ThreadPool* pool) {
  const util::Status valid = ValidateParams(params);
  if (!valid.ok()) return valid;

  const uint32_t n = dataset.size();
  std::optional<util::ThreadPool> owned;
  if (pool == nullptr) {
    uint32_t threads = params.threads != 0
                           ? params.threads
                           : util::ThreadPool::DefaultThreadCount();
    threads = std::max(1u, std::min(threads, std::max(n, 1u)));
    owned.emplace(threads);
    pool = &*owned;
  }
  const uint32_t workers = pool->thread_count();
  const spatial::GridIndex index(dataset.points(), params.delta);

  // --- Phase 1: per-vertex candidate lists — the (at most M) nearest
  // delta-neighbors, ascending by (distance, id). Each worker packs its
  // vertex block into a private arena with allocation-free radius queries;
  // the arenas are then spliced, in block order, into one flat CSR table.
  std::vector<uint32_t> cand_count(n, 0);
  std::vector<std::vector<uint32_t>> arena(workers);
  pool->ParallelFor(n, [&](uint32_t w, uint64_t begin, uint64_t end) {
    spatial::GridIndex::QueryScratch scratch;
    std::vector<uint32_t>& ids = arena[w];
    ids.reserve((end - begin) * (params.cap_peers ? params.max_peers : 8));
    for (uint64_t u = begin; u < end; ++u) {
      const size_t before = ids.size();
      const auto uid = static_cast<uint32_t>(u);
      const uint32_t found = index.RadiusQueryInto(
          dataset.point(uid), params.delta, uid, &scratch, &ids);
      uint32_t kept = found;
      if (params.cap_peers && kept > params.max_peers) {
        kept = params.max_peers;
        ids.resize(before + kept);  // sorted ascending: keep the M nearest
      }
      cand_count[u] = kept;
    }
  });
  std::vector<uint32_t> cand_off(n + 1, 0);
  for (uint32_t u = 0; u < n; ++u) {
    cand_off[u + 1] = cand_off[u] + cand_count[u];
  }
  const uint32_t total_cands = cand_off[n];
  std::vector<uint32_t> cand_ids(total_cands);
  pool->RunOnAllThreads([&](uint32_t w) {
    const uint64_t block = pool->BlockBegin(w, n);
    if (arena[w].empty()) return;
    std::copy(arena[w].begin(), arena[w].end(),
              cand_ids.begin() + cand_off[block]);
  });

  // --- Phase 2a: per-vertex candidate ids re-ordered by id (keeping each
  // one's position in the distance order), so mutuality reduces to sorted
  // intersections.
  std::vector<uint32_t> by_id(total_cands);
  std::vector<uint32_t> by_id_pos(total_cands);
  pool->ParallelFor(n, [&](uint32_t, uint64_t begin, uint64_t end) {
    std::vector<uint32_t> order;
    for (uint64_t u = begin; u < end; ++u) {
      const uint32_t lo = cand_off[u];
      const uint32_t deg = cand_off[u + 1] - lo;
      order.resize(deg);
      std::iota(order.begin(), order.end(), 0u);
      std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        return cand_ids[lo + a] < cand_ids[lo + b];
      });
      for (uint32_t i = 0; i < deg; ++i) {
        by_id[lo + i] = cand_ids[lo + order[i]];
        by_id_pos[lo + i] = order[i];
      }
    }
  });

  // --- Phase 2b: transpose the candidate table (who chose me?) with a
  // parallel counting sort. Each in-bucket lists its sources in ascending
  // vertex order because workers own ascending contiguous blocks and their
  // cursors are laid out in worker order.
  std::vector<std::vector<uint32_t>> worker_count(
      workers, std::vector<uint32_t>(n, 0));
  pool->ParallelFor(n, [&](uint32_t w, uint64_t begin, uint64_t end) {
    std::vector<uint32_t>& count = worker_count[w];
    for (uint64_t u = begin; u < end; ++u) {
      for (uint32_t s = cand_off[u]; s < cand_off[u + 1]; ++s) {
        ++count[cand_ids[s]];
      }
    }
  });
  std::vector<uint32_t> in_off(n + 1, 0);
  {
    uint32_t running = 0;
    for (uint32_t v = 0; v < n; ++v) {
      in_off[v] = running;
      for (uint32_t w = 0; w < workers; ++w) {
        // worker_count becomes each worker's scatter cursor for vertex v.
        const uint32_t c = worker_count[w][v];
        worker_count[w][v] = running;
        running += c;
      }
    }
    in_off[n] = running;
  }
  std::vector<uint32_t> in_src(total_cands);
  std::vector<uint32_t> in_pos(total_cands);
  pool->ParallelFor(n, [&](uint32_t w, uint64_t begin, uint64_t end) {
    std::vector<uint32_t>& cursor = worker_count[w];
    for (uint64_t u = begin; u < end; ++u) {
      for (uint32_t s = cand_off[u]; s < cand_off[u + 1]; ++s) {
        const uint32_t v = cand_ids[s];
        const uint32_t slot = cursor[v]++;
        in_src[slot] = static_cast<uint32_t>(u);
        in_pos[slot] = s - cand_off[u];  // u's distance-order position of v
      }
    }
  });

  // --- Phase 2c: mutuality + ranks. A candidate v of u is a mutual peer
  // iff v also chose u, i.e. iff v appears in both u's candidate set and
  // u's in-bucket — a sorted-merge intersection that yields, in the same
  // pass, where u sits in v's distance order. Ranks are then assigned over
  // the mutual subset in distance order, matching the sequential
  // reference's re-sorted peer lists.
  std::vector<uint32_t> mutual_rank(total_cands, 0);  // 0 = not mutual
  std::vector<uint32_t> peer_pos(total_cands, 0);
  pool->ParallelFor(n, [&](uint32_t, uint64_t begin, uint64_t end) {
    for (uint64_t u = begin; u < end; ++u) {
      const uint32_t lo = cand_off[u];
      uint32_t i = lo;
      uint32_t j = in_off[u];
      while (i < cand_off[u + 1] && j < in_off[u + 1]) {
        const uint32_t a = by_id[i];
        const uint32_t b = in_src[j];
        if (a < b) {
          ++i;
        } else if (b < a) {
          ++j;
        } else {
          const uint32_t slot = lo + by_id_pos[i];
          mutual_rank[slot] = 1;          // flag; becomes the rank below
          peer_pos[slot] = in_pos[j];     // u's position in v's list
          ++i;
          ++j;
        }
      }
      uint32_t rank = 0;
      for (uint32_t s = lo; s < cand_off[u + 1]; ++s) {
        if (mutual_rank[s] != 0) mutual_rank[s] = ++rank;
      }
    }
  });

  // --- Phase 3: emit edges into per-worker buffers, handling each
  // unordered pair at its smaller endpoint, and splice them in block order
  // — the exact sequence a sequential vertex scan would produce.
  std::vector<std::vector<Edge>> edge_buf(workers);
  pool->ParallelFor(n, [&](uint32_t w, uint64_t begin, uint64_t end) {
    std::vector<Edge>& out = edge_buf[w];
    for (uint64_t u = begin; u < end; ++u) {
      for (uint32_t s = cand_off[u]; s < cand_off[u + 1]; ++s) {
        if (mutual_rank[s] == 0) continue;
        const uint32_t v = cand_ids[s];
        if (v < u) continue;  // handled from v's side
        double weight;
        if (params.measure == ProximityMeasure::kTdoaBucket) {
          weight = TdoaWeight(dataset, static_cast<VertexId>(u), v, params);
        } else {
          const uint32_t rank_u = mutual_rank[s];  // rank of v at u
          const uint32_t rank_v =
              mutual_rank[cand_off[v] + peer_pos[s]];  // rank of u at v
          weight = static_cast<double>(std::min(rank_u, rank_v));
        }
        out.push_back(Edge{static_cast<VertexId>(u), v, weight});
      }
    }
  });
  std::vector<Edge> edges;
  {
    size_t total_edges = 0;
    for (const std::vector<Edge>& buf : edge_buf) total_edges += buf.size();
    edges.reserve(total_edges);
    for (const std::vector<Edge>& buf : edge_buf) {
      edges.insert(edges.end(), buf.begin(), buf.end());
    }
  }

  // --- Phase 4: CSR adjacency. The scatter is a cheap linear pass; the
  // per-slice sorts (the expensive part) run in parallel and are
  // order-independent because (weight, id) keys are unique within a slice.
  std::vector<uint32_t> adj_off(n + 1, 0);
  for (const Edge& e : edges) {
    ++adj_off[e.u + 1];
    ++adj_off[e.v + 1];
  }
  for (uint32_t v = 0; v < n; ++v) adj_off[v + 1] += adj_off[v];
  std::vector<HalfEdge> halfedges(2 * edges.size());
  {
    std::vector<uint32_t> cursor(adj_off.begin(), adj_off.end() - 1);
    for (const Edge& e : edges) {
      halfedges[cursor[e.u]++] = HalfEdge{e.v, e.weight};
      halfedges[cursor[e.v]++] = HalfEdge{e.u, e.weight};
    }
  }
  pool->ParallelFor(n, [&](uint32_t, uint64_t begin, uint64_t end) {
    for (uint64_t v = begin; v < end; ++v) {
      std::sort(halfedges.begin() + adj_off[v],
                halfedges.begin() + adj_off[v + 1],
                [](const HalfEdge& a, const HalfEdge& b) {
                  return a.weight < b.weight ||
                         (a.weight == b.weight && a.to < b.to);
                });
    }
  });
  return Wpg(std::move(edges), std::move(adj_off), std::move(halfedges));
}

util::Result<Wpg> BuildWpgReference(const data::Dataset& dataset,
                                    const WpgBuildParams& params) {
  const util::Status valid = ValidateParams(params);
  if (!valid.ok()) return valid;

  const uint32_t n = dataset.size();
  const spatial::GridIndex index(dataset.points(), params.delta);

  // Step 1: per-user candidate peer list — the (at most M) nearest
  // delta-neighbors, ascending by distance.
  std::vector<std::vector<uint32_t>> candidates(n);
  for (uint32_t u = 0; u < n; ++u) {
    std::vector<spatial::Neighbor> near =
        index.RadiusQuery(dataset.point(u), params.delta, u);
    if (params.cap_peers && near.size() > params.max_peers) {
      near.resize(params.max_peers);
    }
    candidates[u].reserve(near.size());
    for (const spatial::Neighbor& nb : near) candidates[u].push_back(nb.id);
  }

  // Step 2: keep mutual links only; a device cannot hold a point-to-point
  // connection its peer refused.
  std::vector<std::vector<uint32_t>> peers(n);
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v : candidates[u]) {
      if (v < u) continue;  // handle each unordered pair once
      const auto& back = candidates[v];
      if (std::find(back.begin(), back.end(), u) != back.end()) {
        peers[u].push_back(v);
        peers[v].push_back(u);
      }
    }
  }

  // Step 3: RSS rank of each peer. peers[u] preserves ascending-distance
  // order for v > u but appended v < u entries break it, so re-sort by
  // distance (ties by id for determinism).
  for (uint32_t u = 0; u < n; ++u) {
    auto& list = peers[u];
    std::sort(list.begin(), list.end(), [&](uint32_t a, uint32_t b) {
      const double da = geo::SquaredDistance(dataset.point(u), dataset.point(a));
      const double db = geo::SquaredDistance(dataset.point(u), dataset.point(b));
      return da < db || (da == db && a < b);
    });
  }

  // rank_of[u] maps peer id -> 1-based rank in u's sorted list.
  auto rank_of = [&](uint32_t u, uint32_t v) -> uint32_t {
    const auto& list = peers[u];
    for (uint32_t i = 0; i < list.size(); ++i) {
      if (list[i] == v) return i + 1;
    }
    NELA_CHECK(false);  // mutual link must appear in both lists
    return 0;
  };

  Wpg graph(n);
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t i = 0; i < peers[u].size(); ++i) {
      const uint32_t v = peers[u][i];
      if (v < u) continue;
      double weight;
      if (params.measure == ProximityMeasure::kTdoaBucket) {
        weight = TdoaWeight(dataset, u, v, params);
      } else {
        const uint32_t weight_u = i + 1;          // rank of v in u's list
        const uint32_t weight_v = rank_of(v, u);  // rank of u in v's list
        weight = static_cast<double>(std::min(weight_u, weight_v));
      }
      graph.AddEdge(u, v, weight);
    }
  }
  graph.SortAdjacencyByWeight();
  return graph;
}

}  // namespace nela::graph
