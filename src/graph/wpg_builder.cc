#include "graph/wpg_builder.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>
#include <vector>

#include "spatial/grid_index.h"
#include "util/timer.h"

namespace nela::graph {

namespace {

// Tile edge length in grid cells for the fused query phase. A tile of
// 16x16 cells keeps a chunk's working set (the tile plus its one-cell
// query halo) inside L2 while leaving hundreds of chunks to steal at the
// sweep sizes that matter.
constexpr uint32_t kTileCells = 16;

util::Status ValidateParams(const WpgBuildParams& params) {
  if (params.delta <= 0.0) {
    return util::InvalidArgumentError("delta must be positive");
  }
  if (params.cap_peers && params.max_peers == 0) {
    return util::InvalidArgumentError("max_peers must be positive");
  }
  if (params.measure == ProximityMeasure::kTdoaBucket &&
      params.tdoa_levels == 0) {
    return util::InvalidArgumentError("tdoa_levels must be positive");
  }
  return util::Status::Ok();
}

double TdoaWeight(const data::Dataset& dataset, VertexId u, VertexId v,
                  const WpgBuildParams& params) {
  // Time-difference-of-arrival resolves distance directly; quantize it
  // into 1..tdoa_levels buckets (symmetric, so both devices agree without
  // negotiation).
  const double distance = geo::Distance(dataset.point(u), dataset.point(v));
  const double fraction = std::min(distance / params.delta, 1.0);
  return std::max<double>(1.0, std::ceil(fraction * params.tdoa_levels));
}

// Where one vertex's candidate run starts inside the arena of the worker
// that executed its tile. Which arena a vertex lands in is
// schedule-dependent; only the splice destination (cand_off[vertex]) is
// part of the result, and that is a pure function of the counts.
struct ArenaRun {
  uint32_t vertex = 0;
  uint32_t offset = 0;
};

}  // namespace

double WpgBuildStats::CriticalPathSeconds() const {
  double total = 0.0;
  for (const WpgPhaseStats& p : phases) {
    total += p.serial_seconds + p.max_worker_cpu_seconds;
  }
  return total;
}

util::Result<Wpg> BuildWpg(const data::Dataset& dataset,
                           const WpgBuildParams& params,
                           util::ThreadPool* pool, WpgBuildStats* stats) {
  const util::Status valid = ValidateParams(params);
  if (!valid.ok()) return valid;

  const uint32_t n = dataset.size();
  std::optional<util::ThreadPool> owned;
  if (pool == nullptr) {
    uint32_t threads = params.threads != 0
                           ? params.threads
                           : util::ThreadPool::DefaultThreadCount();
    threads = std::max(1u, std::min(threads, std::max(n, 1u)));
    owned.emplace(threads);
    pool = &*owned;
  }
  const uint32_t workers = pool->thread_count();

  WpgBuildStats local_stats;
  WpgBuildStats& st = stats != nullptr ? *stats : local_stats;
  st = WpgBuildStats{};
  st.threads = workers;
  const util::WallTimer total_timer;

  // All-or-nothing dispatch policy: small datasets run every phase inline
  // (dispatch overhead beats the work itself below the threshold), larger
  // ones dispatch every phase. Encoded through ChunkOptions'
  // sequential_cutoff so each ParallelForChunks call below agrees.
  const uint64_t cutoff =
      (params.grain == 0 && n < kWpgSequentialFallbackUsers) ? UINT64_MAX : 0;
  const auto chunk_options = [&](uint64_t grain,
                                 util::ChunkDispatchStats* ds) {
    util::ChunkOptions options;
    options.grain = grain;
    options.sequential_cutoff = cutoff;
    options.stats = ds;
    return options;
  };
  const auto record = [&](const char* name, double wall, double serial,
                          const util::ChunkDispatchStats& ds) {
    WpgPhaseStats phase;
    phase.name = name;
    phase.wall_seconds = wall;
    phase.serial_seconds = serial;
    phase.cpu_seconds = ds.TotalBusySeconds();
    phase.max_worker_cpu_seconds = ds.MaxWorkerBusySeconds();
    phase.chunks = ds.chunks;
    phase.steals = ds.steals;
    phase.dispatched = ds.dispatched;
    if (ds.dispatched) ++st.parallel_dispatches;
    st.phases.push_back(std::move(phase));
  };

  util::WallTimer phase_timer;
  const spatial::GridIndex index(dataset.points(), params.delta);
  record("index", phase_timer.ElapsedSeconds(), phase_timer.ElapsedSeconds(),
         util::ChunkDispatchStats{});

  // --- Query: one fused pass over cache-blocked tiles of grid cells.
  // Every vertex of every cell in a tile gets its allocation-free radius
  // query and nearest-M cap here, packed into the executing worker's
  // arena; cand_count is the only slot-indexed output. Neighboring
  // queries hit the same cell lines, so the tile's halo stays warm.
  phase_timer.Reset();
  const uint32_t tiles_x = (index.cols() + kTileCells - 1) / kTileCells;
  const uint32_t tiles_y = (index.rows() + kTileCells - 1) / kTileCells;
  const uint64_t tile_count = static_cast<uint64_t>(tiles_x) * tiles_y;
  std::vector<uint32_t> cand_count(n, 0);
  std::vector<std::vector<uint32_t>> arena_ids(workers);
  std::vector<std::vector<ArenaRun>> arena_runs(workers);
  std::vector<spatial::GridIndex::QueryScratch> scratch(workers);
  {
    const size_t per_worker = static_cast<size_t>(n) / workers + 1;
    const size_t per_vertex = params.cap_peers ? params.max_peers : 8;
    for (uint32_t w = 0; w < workers; ++w) {
      arena_ids[w].reserve(per_worker * per_vertex);
      arena_runs[w].reserve(per_worker);
    }
  }
  util::ChunkDispatchStats query_ds;
  pool->ParallelForChunks(
      tile_count, chunk_options(params.grain, &query_ds),
      [&](uint32_t w, uint64_t, uint64_t begin, uint64_t end) {
        std::vector<uint32_t>& ids = arena_ids[w];
        std::vector<ArenaRun>& runs = arena_runs[w];
        spatial::GridIndex::QueryScratch& qs = scratch[w];
        for (uint64_t t = begin; t < end; ++t) {
          const uint32_t tx = static_cast<uint32_t>(t % tiles_x);
          const uint32_t ty = static_cast<uint32_t>(t / tiles_x);
          const uint32_t cx_end =
              std::min(index.cols(), (tx + 1) * kTileCells);
          const uint32_t cy_end =
              std::min(index.rows(), (ty + 1) * kTileCells);
          for (uint32_t cy = ty * kTileCells; cy < cy_end; ++cy) {
            for (uint32_t cx = tx * kTileCells; cx < cx_end; ++cx) {
              for (const uint32_t u : index.CellPointIds(cx, cy)) {
                const auto before = static_cast<uint32_t>(ids.size());
                const uint32_t found = index.RadiusQueryInto(
                    dataset.point(u), params.delta, u, &qs, &ids);
                uint32_t kept = found;
                if (params.cap_peers && kept > params.max_peers) {
                  kept = params.max_peers;
                  // Sorted ascending: keep the M nearest.
                  ids.resize(before + kept);
                }
                cand_count[u] = kept;
                runs.push_back(ArenaRun{u, before});
              }
            }
          }
        }
      });
  record("query", phase_timer.ElapsedSeconds(), 0.0, query_ds);

  // --- Splice: prefix-sum the counts into the CSR offsets, then copy
  // each arena run into its vertex slot. Any worker may copy any arena —
  // destinations depend only on cand_off.
  phase_timer.Reset();
  std::vector<uint32_t> cand_off(n + 1, 0);
  for (uint32_t u = 0; u < n; ++u) {
    cand_off[u + 1] = cand_off[u] + cand_count[u];
  }
  const uint32_t total_cands = cand_off[n];
  std::vector<uint32_t> cand_ids(total_cands);
  const double splice_serial = phase_timer.ElapsedSeconds();
  util::ChunkDispatchStats splice_ds;
  pool->ParallelForChunks(
      workers, chunk_options(1, &splice_ds),
      [&](uint32_t, uint64_t, uint64_t begin, uint64_t end) {
        for (uint64_t w = begin; w < end; ++w) {
          const std::vector<uint32_t>& ids = arena_ids[w];
          for (const ArenaRun& run : arena_runs[w]) {
            std::copy(ids.begin() + run.offset,
                      ids.begin() + run.offset + cand_count[run.vertex],
                      cand_ids.begin() + cand_off[run.vertex]);
          }
        }
      });
  record("splice", phase_timer.ElapsedSeconds(), splice_serial, splice_ds);

  // --- Mutual: a candidate v of u is a mutual peer iff u appears in v's
  // (at most M entry) candidate list, found by direct probe — no
  // transpose, no extra passes over the table. The same probe yields u's
  // position in v's distance order; ranks are then assigned over the
  // mutual subset in distance order, matching the sequential reference's
  // re-sorted peer lists, and the vertex's emitted-edge count falls out
  // of the rank pass.
  phase_timer.Reset();
  std::vector<uint32_t> mutual_rank(total_cands, 0);  // 0 = not mutual
  std::vector<uint32_t> peer_pos(total_cands, 0);
  std::vector<uint32_t> edge_count(n, 0);
  util::ChunkDispatchStats mutual_ds;
  pool->ParallelForChunks(
      n, chunk_options(params.grain, &mutual_ds),
      [&](uint32_t, uint64_t, uint64_t begin, uint64_t end) {
        for (uint64_t u = begin; u < end; ++u) {
          const uint32_t lo = cand_off[u];
          const uint32_t hi = cand_off[u + 1];
          for (uint32_t s = lo; s < hi; ++s) {
            const uint32_t v = cand_ids[s];
            const uint32_t vlo = cand_off[v];
            const uint32_t vhi = cand_off[v + 1];
            for (uint32_t j = vlo; j < vhi; ++j) {
              if (cand_ids[j] == u) {
                mutual_rank[s] = 1;     // flag; becomes the rank below
                peer_pos[s] = j - vlo;  // u's position in v's list
                break;
              }
            }
          }
          uint32_t rank = 0;
          uint32_t emitted = 0;
          for (uint32_t s = lo; s < hi; ++s) {
            if (mutual_rank[s] == 0) continue;
            mutual_rank[s] = ++rank;
            if (cand_ids[s] > u) ++emitted;
          }
          edge_count[u] = emitted;
        }
      });
  record("mutual", phase_timer.ElapsedSeconds(), 0.0, mutual_ds);

  // --- Emit: prefix-sum the per-vertex edge counts, then write every
  // edge straight into its final slot — ascending vertex, distance order
  // within a vertex, each unordered pair at its smaller endpoint: the
  // exact sequence a sequential vertex scan would produce, with no
  // per-worker buffers left to splice. Reading mutual_rank across
  // vertices is safe here: the mutual phase's barrier has passed.
  phase_timer.Reset();
  std::vector<uint32_t> edge_off(n + 1, 0);
  for (uint32_t u = 0; u < n; ++u) {
    edge_off[u + 1] = edge_off[u] + edge_count[u];
  }
  std::vector<Edge> edges(edge_off[n]);
  const double emit_serial = phase_timer.ElapsedSeconds();
  util::ChunkDispatchStats emit_ds;
  pool->ParallelForChunks(
      n, chunk_options(params.grain, &emit_ds),
      [&](uint32_t, uint64_t, uint64_t begin, uint64_t end) {
        for (uint64_t u = begin; u < end; ++u) {
          uint32_t out = edge_off[u];
          for (uint32_t s = cand_off[u]; s < cand_off[u + 1]; ++s) {
            if (mutual_rank[s] == 0) continue;
            const uint32_t v = cand_ids[s];
            if (v < u) continue;  // handled from v's side
            double weight;
            if (params.measure == ProximityMeasure::kTdoaBucket) {
              weight =
                  TdoaWeight(dataset, static_cast<VertexId>(u), v, params);
            } else {
              const uint32_t rank_u = mutual_rank[s];  // rank of v at u
              const uint32_t rank_v =
                  mutual_rank[cand_off[v] + peer_pos[s]];  // rank of u at v
              weight = static_cast<double>(std::min(rank_u, rank_v));
            }
            edges[out++] = Edge{static_cast<VertexId>(u), v, weight};
          }
        }
      });
  record("emit", phase_timer.ElapsedSeconds(), emit_serial, emit_ds);

  // --- Assemble: CSR adjacency. The scatter is a cheap linear pass; the
  // per-slice sorts (the expensive part) run under the stealing scheduler
  // and are order-independent because (weight, id) keys are unique within
  // a slice.
  phase_timer.Reset();
  std::vector<uint32_t> adj_off(n + 1, 0);
  for (const Edge& e : edges) {
    ++adj_off[e.u + 1];
    ++adj_off[e.v + 1];
  }
  for (uint32_t v = 0; v < n; ++v) adj_off[v + 1] += adj_off[v];
  std::vector<HalfEdge> halfedges(2 * edges.size());
  {
    std::vector<uint32_t> cursor(adj_off.begin(), adj_off.end() - 1);
    for (const Edge& e : edges) {
      halfedges[cursor[e.u]++] = HalfEdge{e.v, e.weight};
      halfedges[cursor[e.v]++] = HalfEdge{e.u, e.weight};
    }
  }
  const double assemble_serial = phase_timer.ElapsedSeconds();
  util::ChunkDispatchStats assemble_ds;
  pool->ParallelForChunks(
      n, chunk_options(params.grain, &assemble_ds),
      [&](uint32_t, uint64_t, uint64_t begin, uint64_t end) {
        for (uint64_t v = begin; v < end; ++v) {
          std::sort(halfedges.begin() + adj_off[v],
                    halfedges.begin() + adj_off[v + 1],
                    [](const HalfEdge& a, const HalfEdge& b) {
                      return a.weight < b.weight ||
                             (a.weight == b.weight && a.to < b.to);
                    });
        }
      });
  record("assemble", phase_timer.ElapsedSeconds(), assemble_serial,
         assemble_ds);

  st.total_wall_seconds = total_timer.ElapsedSeconds();
  return Wpg(std::move(edges), std::move(adj_off), std::move(halfedges));
}

util::Result<Wpg> BuildWpgReference(const data::Dataset& dataset,
                                    const WpgBuildParams& params) {
  const util::Status valid = ValidateParams(params);
  if (!valid.ok()) return valid;

  const uint32_t n = dataset.size();
  const spatial::GridIndex index(dataset.points(), params.delta);

  // Step 1: per-user candidate peer list — the (at most M) nearest
  // delta-neighbors, ascending by distance.
  std::vector<std::vector<uint32_t>> candidates(n);
  for (uint32_t u = 0; u < n; ++u) {
    std::vector<spatial::Neighbor> near =
        index.RadiusQuery(dataset.point(u), params.delta, u);
    if (params.cap_peers && near.size() > params.max_peers) {
      near.resize(params.max_peers);
    }
    candidates[u].reserve(near.size());
    for (const spatial::Neighbor& nb : near) candidates[u].push_back(nb.id);
  }

  // Step 2: keep mutual links only; a device cannot hold a point-to-point
  // connection its peer refused.
  std::vector<std::vector<uint32_t>> peers(n);
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v : candidates[u]) {
      if (v < u) continue;  // handle each unordered pair once
      const auto& back = candidates[v];
      if (std::find(back.begin(), back.end(), u) != back.end()) {
        peers[u].push_back(v);
        peers[v].push_back(u);
      }
    }
  }

  // Step 3: RSS rank of each peer. peers[u] preserves ascending-distance
  // order for v > u but appended v < u entries break it, so re-sort by
  // distance (ties by id for determinism).
  for (uint32_t u = 0; u < n; ++u) {
    auto& list = peers[u];
    std::sort(list.begin(), list.end(), [&](uint32_t a, uint32_t b) {
      const double da = geo::SquaredDistance(dataset.point(u), dataset.point(a));
      const double db = geo::SquaredDistance(dataset.point(u), dataset.point(b));
      return da < db || (da == db && a < b);
    });
  }

  // rank_of[u] maps peer id -> 1-based rank in u's sorted list.
  auto rank_of = [&](uint32_t u, uint32_t v) -> uint32_t {
    const auto& list = peers[u];
    for (uint32_t i = 0; i < list.size(); ++i) {
      if (list[i] == v) return i + 1;
    }
    NELA_CHECK(false);  // mutual link must appear in both lists
    return 0;
  };

  Wpg graph(n);
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t i = 0; i < peers[u].size(); ++i) {
      const uint32_t v = peers[u][i];
      if (v < u) continue;
      double weight;
      if (params.measure == ProximityMeasure::kTdoaBucket) {
        weight = TdoaWeight(dataset, u, v, params);
      } else {
        const uint32_t weight_u = i + 1;          // rank of v in u's list
        const uint32_t weight_v = rank_of(v, u);  // rank of u in v's list
        weight = static_cast<double>(std::min(weight_u, weight_v));
      }
      graph.AddEdge(u, v, weight);
    }
  }
  graph.SortAdjacencyByWeight();
  return graph;
}

}  // namespace nela::graph
