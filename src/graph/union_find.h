// Disjoint-set union with union by size and path halving.

#ifndef NELA_GRAPH_UNION_FIND_H_
#define NELA_GRAPH_UNION_FIND_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace nela::graph {

class UnionFind {
 public:
  explicit UnionFind(uint32_t count);

  // Representative of x's set.
  uint32_t Find(uint32_t x);

  // Merges the sets of a and b; returns true when they were distinct.
  bool Union(uint32_t a, uint32_t b);

  bool Connected(uint32_t a, uint32_t b) { return Find(a) == Find(b); }

  // Size of x's set.
  uint32_t SizeOf(uint32_t x) { return size_[Find(x)]; }

  uint32_t set_count() const { return set_count_; }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
  uint32_t set_count_;
};

}  // namespace nela::graph

#endif  // NELA_GRAPH_UNION_FIND_H_
