#include "graph/hierarchy.h"

#include <algorithm>
#include <unordered_map>

#include "graph/union_find.h"

namespace nela::graph {

TConnHierarchy::TConnHierarchy(const Wpg& graph)
    : vertex_count_(graph.vertex_count()) {
  nodes_.resize(vertex_count_);
  for (uint32_t v = 0; v < vertex_count_; ++v) {
    nodes_[v] = Node{EdgeKey::Min(), 1, -1, {}};
  }

  // Kruskal over the strict total order; each effective union creates one
  // binary internal node.
  std::vector<uint32_t> order(graph.edge_count());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  const std::vector<Edge>& edges = graph.edges();
  std::sort(order.begin(), order.end(), [&edges](uint32_t a, uint32_t b) {
    return KeyOf(edges[a]) < KeyOf(edges[b]);
  });

  UnionFind dsu(vertex_count_);
  // Hierarchy node of each current component, keyed by DSU root.
  std::unordered_map<uint32_t, uint32_t> comp_node;
  comp_node.reserve(vertex_count_);
  for (uint32_t v = 0; v < vertex_count_; ++v) comp_node.emplace(v, v);

  for (uint32_t index : order) {
    const Edge& e = edges[index];
    const uint32_t ru = dsu.Find(e.u);
    const uint32_t rv = dsu.Find(e.v);
    if (ru == rv) continue;
    const uint32_t left = comp_node.at(ru);
    const uint32_t right = comp_node.at(rv);
    dsu.Union(ru, rv);
    const uint32_t id = static_cast<uint32_t>(nodes_.size());
    nodes_.push_back(Node{KeyOf(e), nodes_[left].size + nodes_[right].size,
                          -1,
                          {std::min(left, right), std::max(left, right)}});
    nodes_[left].parent = static_cast<int32_t>(id);
    nodes_[right].parent = static_cast<int32_t>(id);
    comp_node.erase(ru);
    comp_node.erase(rv);
    comp_node[dsu.Find(e.u)] = id;
  }

  for (uint32_t id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].parent < 0) roots_.push_back(id);
  }
}

std::vector<VertexId> TConnHierarchy::VerticesOf(uint32_t id) const {
  NELA_CHECK_LT(id, nodes_.size());
  std::vector<VertexId> out;
  out.reserve(nodes_[id].size);
  std::vector<uint32_t> stack = {id};
  while (!stack.empty()) {
    const uint32_t top = stack.back();
    stack.pop_back();
    if (top < vertex_count_) {
      out.push_back(top);
      continue;
    }
    for (uint32_t child : nodes_[top].children) stack.push_back(child);
  }
  std::sort(out.begin(), out.end());
  return out;
}

int32_t TConnHierarchy::SmallestValidAncestor(VertexId v, uint32_t k) const {
  NELA_CHECK_LT(v, vertex_count_);
  int32_t current = static_cast<int32_t>(v);
  while (current >= 0) {
    if (nodes_[current].size >= k) return current;
    current = nodes_[current].parent;
  }
  return -1;
}

}  // namespace nela::graph
