// Connectivity queries over (subsets of) a WPG.
//
// The distributed clustering algorithm works on the "remaining WPG": the
// graph minus already-clustered vertices. Rather than materializing
// subgraphs, these helpers take an `active` mask (nullptr = all vertices
// active).

#ifndef NELA_GRAPH_CONNECTIVITY_H_
#define NELA_GRAPH_CONNECTIVITY_H_

#include <cstdint>
#include <vector>

#include "graph/wpg.h"

namespace nela::graph {

// Vertices reachable from `start` via active vertices and edges with
// KeyOf(edge) <= `t` (the refined t-connectivity class of Definition 4.1;
// use EdgeKey::UpTo(w) for a plain scalar threshold). When `stop_size` > 0
// the search stops as soon as that many vertices are found (used by the
// "does v have a valid t-connectivity cluster" check, which only needs
// size >= k). Result is in BFS order, `start` first.
std::vector<VertexId> ThresholdComponent(const Wpg& graph, VertexId start,
                                         EdgeKey t,
                                         const std::vector<bool>* active,
                                         uint32_t stop_size = 0);

// Scalar-threshold convenience overload (admits every edge of weight <= t).
inline std::vector<VertexId> ThresholdComponent(
    const Wpg& graph, VertexId start, double t,
    const std::vector<bool>* active, uint32_t stop_size = 0) {
  return ThresholdComponent(graph, start, EdgeKey::UpTo(t), active,
                            stop_size);
}

// True when the subgraph induced by `vertices` is connected. An empty set
// is connected by convention.
bool IsInducedConnected(const Wpg& graph, const std::vector<VertexId>& vertices);

// Connected components of the subgraph induced by `vertices`, each sorted
// ascending; component order follows the smallest contained vertex.
std::vector<std::vector<VertexId>> InducedComponents(
    const Wpg& graph, const std::vector<VertexId>& vertices);

// Edges of the subgraph induced by `vertices`.
std::vector<Edge> InducedEdges(const Wpg& graph,
                               const std::vector<VertexId>& vertices);

}  // namespace nela::graph

#endif  // NELA_GRAPH_CONNECTIVITY_H_
