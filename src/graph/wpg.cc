#include "graph/wpg.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>

namespace nela::graph {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void MixDigest(uint64_t* digest, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    *digest ^= (value >> (8 * i)) & 0xffu;
    *digest *= kFnvPrime;
  }
}

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

Wpg::Wpg(uint32_t vertex_count)
    : vertex_count_(vertex_count), offsets_(vertex_count + 1, 0) {}

Wpg::Wpg(std::vector<Edge> edges, std::vector<uint32_t> offsets,
         std::vector<HalfEdge> halfedges)
    : vertex_count_(static_cast<uint32_t>(offsets.size() - 1)),
      edges_(std::move(edges)),
      offsets_(std::move(offsets)),
      halfedges_(std::move(halfedges)) {
  NELA_CHECK_GE(offsets_.size(), 1u);
  NELA_CHECK_EQ(offsets_.front(), 0u);
  NELA_CHECK_EQ(offsets_.back(), halfedges_.size());
  NELA_CHECK_EQ(halfedges_.size(), 2 * edges_.size());
}

util::Result<Wpg> Wpg::FromEdges(uint32_t vertex_count,
                                 const std::vector<Edge>& edges) {
  Wpg graph(vertex_count);
  std::unordered_set<uint64_t> seen;
  seen.reserve(edges.size() * 2);
  for (const Edge& e : edges) {
    if (e.u >= vertex_count || e.v >= vertex_count) {
      return util::InvalidArgumentError("edge endpoint out of range");
    }
    if (e.u == e.v) {
      return util::InvalidArgumentError("self edge not allowed");
    }
    if (e.weight <= 0.0) {
      return util::InvalidArgumentError("edge weight must be positive");
    }
    const uint64_t key = (static_cast<uint64_t>(std::min(e.u, e.v)) << 32) |
                         std::max(e.u, e.v);
    if (!seen.insert(key).second) {
      return util::InvalidArgumentError("duplicate edge");
    }
    graph.AddEdge(e.u, e.v, e.weight);
  }
  graph.SortAdjacencyByWeight();
  return graph;
}

void Wpg::AddEdge(VertexId u, VertexId v, double weight) {
  NELA_CHECK_LT(u, vertex_count_);
  NELA_CHECK_LT(v, vertex_count_);
  NELA_CHECK_NE(u, v);
  NELA_CHECK_GT(weight, 0.0);
  edges_.push_back(Edge{u, v, weight});
  adjacency_stale_ = true;
}

void Wpg::EnsureAdjacency() const {
  if (!adjacency_stale_) return;
  offsets_.assign(vertex_count_ + 1, 0);
  for (const Edge& e : edges_) {
    ++offsets_[e.u + 1];
    ++offsets_[e.v + 1];
  }
  for (uint32_t v = 0; v < vertex_count_; ++v) {
    offsets_[v + 1] += offsets_[v];
  }
  halfedges_.resize(2 * edges_.size());
  std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Edge& e : edges_) {
    halfedges_[cursor[e.u]++] = HalfEdge{e.v, e.weight};
    halfedges_[cursor[e.v]++] = HalfEdge{e.u, e.weight};
  }
  adjacency_stale_ = false;
}

double Wpg::AverageDegree() const {
  if (vertex_count_ == 0) return 0.0;
  return 2.0 * static_cast<double>(edges_.size()) /
         static_cast<double>(vertex_count_);
}

double Wpg::MaxEdgeWeight() const {
  double max_weight = 0.0;
  for (const Edge& e : edges_) max_weight = std::max(max_weight, e.weight);
  return max_weight;
}

void Wpg::SortAdjacencyByWeight() {
  EnsureAdjacency();
  for (uint32_t v = 0; v < vertex_count_; ++v) {
    std::sort(halfedges_.begin() + offsets_[v],
              halfedges_.begin() + offsets_[v + 1],
              [](const HalfEdge& a, const HalfEdge& b) {
                return a.weight < b.weight ||
                       (a.weight == b.weight && a.to < b.to);
              });
  }
}

uint64_t Wpg::Digest() const {
  EnsureAdjacency();
  uint64_t digest = kFnvOffset;
  MixDigest(&digest, vertex_count_);
  MixDigest(&digest, edges_.size());
  for (const Edge& e : edges_) {
    MixDigest(&digest, e.u);
    MixDigest(&digest, e.v);
    MixDigest(&digest, DoubleBits(e.weight));
  }
  for (uint32_t offset : offsets_) MixDigest(&digest, offset);
  for (const HalfEdge& half : halfedges_) {
    MixDigest(&digest, half.to);
    MixDigest(&digest, DoubleBits(half.weight));
  }
  return digest;
}

}  // namespace nela::graph
