#include "graph/wpg.h"

#include <algorithm>
#include <unordered_set>

namespace nela::graph {

Wpg::Wpg(uint32_t vertex_count) : adjacency_(vertex_count) {}

util::Result<Wpg> Wpg::FromEdges(uint32_t vertex_count,
                                 const std::vector<Edge>& edges) {
  Wpg graph(vertex_count);
  std::unordered_set<uint64_t> seen;
  seen.reserve(edges.size() * 2);
  for (const Edge& e : edges) {
    if (e.u >= vertex_count || e.v >= vertex_count) {
      return util::InvalidArgumentError("edge endpoint out of range");
    }
    if (e.u == e.v) {
      return util::InvalidArgumentError("self edge not allowed");
    }
    if (e.weight <= 0.0) {
      return util::InvalidArgumentError("edge weight must be positive");
    }
    const uint64_t key = (static_cast<uint64_t>(std::min(e.u, e.v)) << 32) |
                         std::max(e.u, e.v);
    if (!seen.insert(key).second) {
      return util::InvalidArgumentError("duplicate edge");
    }
    graph.AddEdge(e.u, e.v, e.weight);
  }
  graph.SortAdjacencyByWeight();
  return graph;
}

void Wpg::AddEdge(VertexId u, VertexId v, double weight) {
  NELA_CHECK_LT(u, adjacency_.size());
  NELA_CHECK_LT(v, adjacency_.size());
  NELA_CHECK_NE(u, v);
  NELA_CHECK_GT(weight, 0.0);
  adjacency_[u].push_back(HalfEdge{v, weight});
  adjacency_[v].push_back(HalfEdge{u, weight});
  edges_.push_back(Edge{u, v, weight});
}

double Wpg::AverageDegree() const {
  if (adjacency_.empty()) return 0.0;
  return 2.0 * static_cast<double>(edges_.size()) /
         static_cast<double>(adjacency_.size());
}

double Wpg::MaxEdgeWeight() const {
  double max_weight = 0.0;
  for (const Edge& e : edges_) max_weight = std::max(max_weight, e.weight);
  return max_weight;
}

void Wpg::SortAdjacencyByWeight() {
  for (auto& list : adjacency_) {
    std::sort(list.begin(), list.end(),
              [](const HalfEdge& a, const HalfEdge& b) {
                return a.weight < b.weight ||
                       (a.weight == b.weight && a.to < b.to);
              });
  }
}

}  // namespace nela::graph
