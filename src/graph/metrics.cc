#include "graph/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <unordered_map>

#include "graph/connectivity.h"

namespace nela::graph {

double MaxEdgeWeightWithin(const Wpg& graph,
                           const std::vector<VertexId>& vertices) {
  double mew = 0.0;
  for (const Edge& e : InducedEdges(graph, vertices)) {
    mew = std::max(mew, e.weight);
  }
  return mew;
}

double WeightedDiameter(const Wpg& graph,
                        const std::vector<VertexId>& vertices) {
  if (vertices.size() <= 1) return 0.0;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::unordered_map<VertexId, uint32_t> index;
  index.reserve(vertices.size());
  for (uint32_t i = 0; i < vertices.size(); ++i) index[vertices[i]] = i;

  double diameter = 0.0;
  std::vector<double> dist(vertices.size());
  using Item = std::pair<double, VertexId>;  // (distance, vertex)
  for (VertexId source : vertices) {
    std::fill(dist.begin(), dist.end(), kInf);
    dist[index[source]] = 0.0;
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
    heap.push({0.0, source});
    while (!heap.empty()) {
      const auto [d, u] = heap.top();
      heap.pop();
      if (d > dist[index[u]]) continue;
      for (const HalfEdge& edge : graph.Neighbors(u)) {
        auto it = index.find(edge.to);
        if (it == index.end()) continue;  // outside the induced subgraph
        const double next = d + edge.weight;
        if (next < dist[it->second]) {
          dist[it->second] = next;
          heap.push({next, edge.to});
        }
      }
    }
    for (double d : dist) {
      if (d == kInf) return kInf;  // disconnected
      diameter = std::max(diameter, d);
    }
  }
  return diameter;
}

double RegularGraphDiameterBound(uint32_t k, uint32_t d, double w,
                                 double eps) {
  NELA_CHECK_GE(k, 2u);
  NELA_CHECK_GE(d, 3u);
  NELA_CHECK_GT(eps, 0.0);
  NELA_CHECK_GT(w, 0.0);
  const double kd = static_cast<double>(k);
  const double inner = (2.0 + eps) * static_cast<double>(d) * kd * std::log(kd);
  const double hops =
      1.0 + std::ceil(std::log(inner) / std::log(static_cast<double>(d - 1)));
  return w * hops;
}

}  // namespace nela::graph
