// Single-linkage merge hierarchy of refined t-connectivity components.
//
// Under the strict total edge order (EdgeKey), sweeping the threshold
// upward over edges yields a binary merge forest: leaves are vertices; an
// internal node records the edge at which its two children become one
// component. For every threshold key t, the refined t-connectivity classes
// of Definition 4.1 are exactly the maximal subtrees formed at keys <= t.
// The refinement matters in practice: the experiments' RSS-rank weights are
// small integers with pervasive ties, and an unrefined sweep produces giant
// unsplittable equal-weight classes (see DESIGN.md).

#ifndef NELA_GRAPH_HIERARCHY_H_
#define NELA_GRAPH_HIERARCHY_H_

#include <cstdint>
#include <vector>

#include "graph/wpg.h"

namespace nela::graph {

class TConnHierarchy {
 public:
  struct Node {
    // Key of the merging edge (EdgeKey::Min() for leaves). Children always
    // form at strictly smaller keys.
    EdgeKey key;
    uint32_t size = 1;
    int32_t parent = -1;  // -1 for roots
    // Empty for leaves; exactly 2 entries for internal nodes.
    std::vector<uint32_t> children;
  };

  explicit TConnHierarchy(const Wpg& graph);

  TConnHierarchy(const TConnHierarchy&) = delete;
  TConnHierarchy& operator=(const TConnHierarchy&) = delete;

  uint32_t vertex_count() const { return vertex_count_; }
  uint32_t node_count() const { return static_cast<uint32_t>(nodes_.size()); }

  // Nodes 0 .. vertex_count-1 are the leaves (node id == vertex id).
  const Node& node(uint32_t id) const {
    NELA_CHECK_LT(id, nodes_.size());
    return nodes_[id];
  }

  // One root per connected component of the graph.
  const std::vector<uint32_t>& roots() const { return roots_; }

  // Vertex ids in the subtree of `id`, ascending.
  std::vector<VertexId> VerticesOf(uint32_t id) const;

  // Lowest ancestor of leaf `v` with size >= k: the smallest valid
  // t-connectivity cluster of v. Returns -1 when even v's whole connected
  // component is smaller than k.
  int32_t SmallestValidAncestor(VertexId v, uint32_t k) const;

 private:
  uint32_t vertex_count_;
  std::vector<Node> nodes_;
  std::vector<uint32_t> roots_;
};

}  // namespace nela::graph

#endif  // NELA_GRAPH_HIERARCHY_H_
