// Builds the weighted proximity graph from a user dataset, following the
// experimental setup of §VI:
//
//  * two users are in proximity when their distance is at most `delta`;
//  * every device connects to at most `max_peers` (M) peers — we keep the M
//    nearest, and require the link to be mutual (point-to-point connections
//    need both endpoints to accept);
//  * RSS is modeled as inversely correlated with distance, so a peer's RSS
//    rank equals its distance rank. The weight of edge (a, b) is the minimum
//    of a's rank in b's sorted peer list and b's rank in a's list (this is
//    what makes the weight symmetric and "agreed by both").
//
// BuildWpg runs as a deterministic work-stealing pipeline over
// util::ThreadPool::ParallelForChunks (see DESIGN.md, "Performance
// architecture"):
//
//   query     one fused pass over cache-blocked grid tiles: every vertex's
//             radius query, nearest-M cap, and candidate count, packed into
//             per-worker arenas;
//   splice    prefix-sum the counts and copy each arena's runs into the
//             flat CSR candidate table, slotted by vertex;
//   mutual    per vertex, probe each candidate's (<= M entry) list for the
//             back-link, yielding mutuality, both endpoints' positions,
//             mutual RSS ranks, and the vertex's emitted-edge count;
//   emit      prefix-sum edge counts and write every edge directly into
//             its final slot (ascending vertex, distance order);
//   assemble  CSR adjacency scatter, then per-vertex slice sorts.
//
// Chunks may execute on any worker in any order (work stealing), but every
// output slot is indexed by vertex, so the result is bit-identical to the
// sequential reference at any thread count and grain (enforced by the
// WpgParallelBuild property tests).

#ifndef NELA_GRAPH_WPG_BUILDER_H_
#define NELA_GRAPH_WPG_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "graph/wpg.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace nela::graph {

// How edge weights are derived from the physical measurement (§III: a
// device can measure proximity by RSS or by TDOA of beacon signals).
enum class ProximityMeasure {
  // Weight = min of the two mutual RSS ranks (the paper's experiments).
  kRssRank,
  // Weight = distance quantized into `tdoa_levels` buckets over [0, delta]
  // (time-of-flight resolution); symmetric by construction.
  kTdoaBucket,
};

// Datasets below this many users run the whole pipeline inline on the
// caller: BENCH_wpg.json showed dispatch overhead costing more than the
// build itself at 5k–20k users, so small inputs never wake the pool.
// A non-zero WpgBuildParams::grain overrides the fallback (tests use that
// to exercise stealing at tiny n).
inline constexpr uint32_t kWpgSequentialFallbackUsers = 8192;

struct WpgBuildParams {
  // Proximity (radio range) threshold in unit-square coordinates.
  double delta = 2e-3;
  // Maximum number of connected peers per device (M in the paper).
  uint32_t max_peers = 10;
  // When false, peer lists keep every delta-neighbor (no resource cap) —
  // used by ablations.
  bool cap_peers = true;
  // Weight model.
  ProximityMeasure measure = ProximityMeasure::kRssRank;
  // Quantization levels for kTdoaBucket (weights 1..tdoa_levels).
  uint32_t tdoa_levels = 16;
  // Worker threads for the parallel build; 0 means one per hardware
  // thread. The built graph is bit-identical at every thread count.
  uint32_t threads = 0;
  // Work items per chunk for the stealing phases; 0 picks the pool's auto
  // grain. Any non-zero value also forces pool dispatch below
  // kWpgSequentialFallbackUsers. Never affects the result.
  uint64_t grain = 0;
};

// Wall/CPU attribution for one pipeline phase. `serial_seconds` is the
// wall time of the phase's serial portion (prefix sums, scatters);
// `cpu_seconds` / `max_worker_cpu_seconds` cover the dispatched portion.
struct WpgPhaseStats {
  std::string name;
  double wall_seconds = 0.0;
  double serial_seconds = 0.0;
  double cpu_seconds = 0.0;
  double max_worker_cpu_seconds = 0.0;
  uint64_t chunks = 0;
  uint64_t steals = 0;
  bool dispatched = false;
};

// Per-build attribution, filled by BuildWpg when requested. Purely
// observational: nothing in the build result depends on it.
struct WpgBuildStats {
  std::vector<WpgPhaseStats> phases;
  uint32_t threads = 1;
  // Phases that actually woke the pool (0 on the sequential-fallback
  // path — the threshold test pins this).
  uint64_t parallel_dispatches = 0;
  double total_wall_seconds = 0.0;

  // Lower bound on the build's wall time given unlimited cores: every
  // phase costs its serial portion plus its busiest worker's CPU time.
  // On core-starved runners (workers time-slicing one core) this is the
  // honest stand-in for measured wall time — see DESIGN.md.
  double CriticalPathSeconds() const;
};

// Deterministic given the dataset and params — the thread count never
// changes the result. When `pool` is non-null it supplies the workers
// (params.threads is ignored); otherwise a pool is created per call.
// When `stats` is non-null it is overwritten with this build's phase
// attribution.
[[nodiscard]] util::Result<Wpg> BuildWpg(const data::Dataset& dataset,
                           const WpgBuildParams& params,
                           util::ThreadPool* pool = nullptr,
                           WpgBuildStats* stats = nullptr);

// The sequential reference implementation: the executable specification
// the parallel pipeline is tested against, and the baseline the
// BENCH_wpg.json speedups are measured from. Ignores params.threads.
[[nodiscard]] util::Result<Wpg> BuildWpgReference(const data::Dataset& dataset,
                                    const WpgBuildParams& params);

}  // namespace nela::graph

#endif  // NELA_GRAPH_WPG_BUILDER_H_
