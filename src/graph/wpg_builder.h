// Builds the weighted proximity graph from a user dataset, following the
// experimental setup of §VI:
//
//  * two users are in proximity when their distance is at most `delta`;
//  * every device connects to at most `max_peers` (M) peers — we keep the M
//    nearest, and require the link to be mutual (point-to-point connections
//    need both endpoints to accept);
//  * RSS is modeled as inversely correlated with distance, so a peer's RSS
//    rank equals its distance rank. The weight of edge (a, b) is the minimum
//    of a's rank in b's sorted peer list and b's rank in a's list (this is
//    what makes the weight symmetric and "agreed by both").
//
// BuildWpg runs as a deterministic parallel pipeline over a
// util::ThreadPool (see DESIGN.md, "Performance architecture"):
//
//   phase 1  fan out allocation-free radius queries per vertex into
//            per-worker candidate arenas, spliced into a flat CSR
//            candidate table;
//   phase 2  transpose the candidate table (parallel counting sort), then
//            compute mutuality and both endpoints' mutual RSS ranks with a
//            sorted-merge intersection per vertex;
//   phase 3  emit edges into per-worker buffers and splice them in vertex
//            order;
//   phase 4  assemble the CSR adjacency and sort each slice in parallel.
//
// Every phase partitions vertices into contiguous blocks and splices
// per-worker output in block order, so the result is bit-identical to the
// sequential reference at any thread count (enforced by the
// WpgParallelBuild property tests).

#ifndef NELA_GRAPH_WPG_BUILDER_H_
#define NELA_GRAPH_WPG_BUILDER_H_

#include "data/dataset.h"
#include "graph/wpg.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace nela::graph {

// How edge weights are derived from the physical measurement (§III: a
// device can measure proximity by RSS or by TDOA of beacon signals).
enum class ProximityMeasure {
  // Weight = min of the two mutual RSS ranks (the paper's experiments).
  kRssRank,
  // Weight = distance quantized into `tdoa_levels` buckets over [0, delta]
  // (time-of-flight resolution); symmetric by construction.
  kTdoaBucket,
};

struct WpgBuildParams {
  // Proximity (radio range) threshold in unit-square coordinates.
  double delta = 2e-3;
  // Maximum number of connected peers per device (M in the paper).
  uint32_t max_peers = 10;
  // When false, peer lists keep every delta-neighbor (no resource cap) —
  // used by ablations.
  bool cap_peers = true;
  // Weight model.
  ProximityMeasure measure = ProximityMeasure::kRssRank;
  // Quantization levels for kTdoaBucket (weights 1..tdoa_levels).
  uint32_t tdoa_levels = 16;
  // Worker threads for the parallel build; 0 means one per hardware
  // thread. The built graph is bit-identical at every thread count.
  uint32_t threads = 0;
};

// Deterministic given the dataset and params — the thread count never
// changes the result. When `pool` is non-null it supplies the workers
// (params.threads is ignored); otherwise a pool is created per call.
[[nodiscard]] util::Result<Wpg> BuildWpg(const data::Dataset& dataset,
                           const WpgBuildParams& params,
                           util::ThreadPool* pool = nullptr);

// The sequential reference implementation: the executable specification
// the parallel pipeline is tested against, and the baseline the
// BENCH_wpg.json speedups are measured from. Ignores params.threads.
[[nodiscard]] util::Result<Wpg> BuildWpgReference(const data::Dataset& dataset,
                                    const WpgBuildParams& params);

}  // namespace nela::graph

#endif  // NELA_GRAPH_WPG_BUILDER_H_
