// Builds the weighted proximity graph from a user dataset, following the
// experimental setup of §VI:
//
//  * two users are in proximity when their distance is at most `delta`;
//  * every device connects to at most `max_peers` (M) peers — we keep the M
//    nearest, and require the link to be mutual (point-to-point connections
//    need both endpoints to accept);
//  * RSS is modeled as inversely correlated with distance, so a peer's RSS
//    rank equals its distance rank. The weight of edge (a, b) is the minimum
//    of a's rank in b's sorted peer list and b's rank in a's list (this is
//    what makes the weight symmetric and "agreed by both").

#ifndef NELA_GRAPH_WPG_BUILDER_H_
#define NELA_GRAPH_WPG_BUILDER_H_

#include "data/dataset.h"
#include "graph/wpg.h"
#include "util/status.h"

namespace nela::graph {

// How edge weights are derived from the physical measurement (§III: a
// device can measure proximity by RSS or by TDOA of beacon signals).
enum class ProximityMeasure {
  // Weight = min of the two mutual RSS ranks (the paper's experiments).
  kRssRank,
  // Weight = distance quantized into `tdoa_levels` buckets over [0, delta]
  // (time-of-flight resolution); symmetric by construction.
  kTdoaBucket,
};

struct WpgBuildParams {
  // Proximity (radio range) threshold in unit-square coordinates.
  double delta = 2e-3;
  // Maximum number of connected peers per device (M in the paper).
  uint32_t max_peers = 10;
  // When false, peer lists keep every delta-neighbor (no resource cap) —
  // used by ablations.
  bool cap_peers = true;
  // Weight model.
  ProximityMeasure measure = ProximityMeasure::kRssRank;
  // Quantization levels for kTdoaBucket (weights 1..tdoa_levels).
  uint32_t tdoa_levels = 16;
};

// Deterministic given the dataset and params.
util::Result<Wpg> BuildWpg(const data::Dataset& dataset,
                           const WpgBuildParams& params);

}  // namespace nela::graph

#endif  // NELA_GRAPH_WPG_BUILDER_H_
