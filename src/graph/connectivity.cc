#include "graph/connectivity.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace nela::graph {

std::vector<VertexId> ThresholdComponent(const Wpg& graph, VertexId start,
                                         EdgeKey t,
                                         const std::vector<bool>* active,
                                         uint32_t stop_size) {
  NELA_CHECK_LT(start, graph.vertex_count());
  if (active != nullptr) {
    NELA_CHECK_EQ(active->size(), graph.vertex_count());
    NELA_CHECK((*active)[start]);
  }
  std::vector<VertexId> component;
  std::unordered_set<VertexId> seen;
  std::deque<VertexId> queue;
  seen.insert(start);
  queue.push_back(start);
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop_front();
    component.push_back(u);
    if (stop_size > 0 && component.size() >= stop_size) break;
    for (const HalfEdge& edge : graph.Neighbors(u)) {
      if (edge.weight > t.weight) break;  // adjacency sorted by weight
      if (KeyOf(u, edge) > t) continue;   // tie refinement
      if (active != nullptr && !(*active)[edge.to]) continue;
      if (seen.insert(edge.to).second) queue.push_back(edge.to);
    }
  }
  return component;
}

bool IsInducedConnected(const Wpg& graph,
                        const std::vector<VertexId>& vertices) {
  if (vertices.empty()) return true;
  const auto components = InducedComponents(graph, vertices);
  return components.size() == 1;
}

std::vector<std::vector<VertexId>> InducedComponents(
    const Wpg& graph, const std::vector<VertexId>& vertices) {
  std::unordered_set<VertexId> in_set(vertices.begin(), vertices.end());
  std::unordered_set<VertexId> seen;
  std::vector<std::vector<VertexId>> components;
  // Iterate over a sorted copy so the component order is deterministic.
  std::vector<VertexId> ordered(vertices);
  std::sort(ordered.begin(), ordered.end());
  for (VertexId root : ordered) {
    if (seen.count(root) > 0) continue;
    std::vector<VertexId> component;
    std::deque<VertexId> queue = {root};
    seen.insert(root);
    while (!queue.empty()) {
      const VertexId u = queue.front();
      queue.pop_front();
      component.push_back(u);
      for (const HalfEdge& edge : graph.Neighbors(u)) {
        if (in_set.count(edge.to) == 0) continue;
        if (seen.insert(edge.to).second) queue.push_back(edge.to);
      }
    }
    std::sort(component.begin(), component.end());
    components.push_back(std::move(component));
  }
  return components;
}

std::vector<Edge> InducedEdges(const Wpg& graph,
                               const std::vector<VertexId>& vertices) {
  std::unordered_set<VertexId> in_set(vertices.begin(), vertices.end());
  std::vector<Edge> out;
  for (const Edge& e : graph.edges()) {
    if (in_set.count(e.u) > 0 && in_set.count(e.v) > 0) out.push_back(e);
  }
  return out;
}

}  // namespace nela::graph
