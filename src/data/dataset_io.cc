#include "data/dataset_io.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace nela::data {

namespace {

// Parses "x,y". Returns false on malformed input.
bool ParseRow(const char* line, geo::Point* out) {
  char* end = nullptr;
  errno = 0;
  const double x = std::strtod(line, &end);
  if (errno != 0 || end == line || *end != ',') return false;
  const char* rest = end + 1;
  errno = 0;
  const double y = std::strtod(rest, &end);
  if (errno != 0 || end == rest) return false;
  while (*end == '\r' || *end == '\n' || *end == ' ') ++end;
  if (*end != '\0') return false;
  *out = geo::Point{x, y};
  return true;
}

}  // namespace

util::Status SaveCsv(const Dataset& dataset, const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return util::UnavailableError("cannot open for writing: " + path);
  }
  bool ok = std::fputs("x,y\n", file) >= 0;
  for (const geo::Point& p : dataset.points()) {
    if (!ok) break;
    ok = std::fprintf(file, "%.17g,%.17g\n", p.x, p.y) > 0;
  }
  if (std::fclose(file) != 0) ok = false;
  if (!ok) return util::UnavailableError("write failed: " + path);
  return util::Status::Ok();
}

util::Result<Dataset> LoadCsv(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return util::NotFoundError("cannot open: " + path);
  }
  std::vector<geo::Point> points;
  char line[256];
  bool first = true;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    // Skip blank lines.
    if (line[0] == '\n' || line[0] == '\r' || line[0] == '\0') continue;
    geo::Point p;
    if (!ParseRow(line, &p)) {
      if (first) {
        first = false;  // Header line.
        continue;
      }
      std::fclose(file);
      return util::InvalidArgumentError("malformed CSV row in " + path +
                                        ": " + line);
    }
    first = false;
    points.push_back(p);
  }
  std::fclose(file);
  return Dataset(std::move(points));
}

}  // namespace nela::data
