#include "data/generators.h"

#include <cmath>
#include <limits>
#include <unordered_set>
#include <vector>

#include "util/check.h"

namespace nela::data {

Dataset GenerateUniform(uint32_t count, util::Rng& rng) {
  std::vector<geo::Point> points;
  points.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    points.push_back(geo::Point{rng.NextDouble(), rng.NextDouble()});
  }
  return Dataset(std::move(points));
}

Dataset GenerateClustered(const ClusteredParams& params, util::Rng& rng) {
  NELA_CHECK_GT(params.num_clusters, 0u);
  NELA_CHECK_GE(params.background_fraction, 0.0);
  NELA_CHECK_LE(params.background_fraction, 1.0);
  NELA_CHECK_LE(params.min_sigma, params.max_sigma);

  struct HotSpot {
    geo::Point center;
    double sigma;
    double weight;
  };
  std::vector<HotSpot> spots;
  spots.reserve(params.num_clusters);
  double total_weight = 0.0;
  for (uint32_t i = 0; i < params.num_clusters; ++i) {
    // Zipf-like popularity: a few large metros, many small towns.
    const double weight = 1.0 / static_cast<double>(i + 1);
    total_weight += weight;
    spots.push_back(HotSpot{
        geo::Point{rng.NextDouble(), rng.NextDouble()},
        rng.NextDouble(params.min_sigma, params.max_sigma), weight});
  }

  std::vector<geo::Point> points;
  points.reserve(params.count);
  for (uint32_t i = 0; i < params.count; ++i) {
    if (rng.NextBernoulli(params.background_fraction)) {
      points.push_back(geo::Point{rng.NextDouble(), rng.NextDouble()});
      continue;
    }
    // Pick a hot spot proportionally to its weight.
    double pick = rng.NextDouble() * total_weight;
    const HotSpot* spot = &spots.back();
    for (const HotSpot& candidate : spots) {
      pick -= candidate.weight;
      if (pick <= 0.0) {
        spot = &candidate;
        break;
      }
    }
    points.push_back(
        geo::Point{rng.NextGaussian(spot->center.x, spot->sigma),
                   rng.NextGaussian(spot->center.y, spot->sigma)});
  }
  Dataset dataset(std::move(points));
  dataset.NormalizeToUnitSquare();
  return dataset;
}

Dataset GenerateRoadNetwork(const RoadNetworkParams& params, util::Rng& rng) {
  NELA_CHECK_GT(params.num_cities, 1u);
  NELA_CHECK_GE(params.roads_per_city, 1u);
  NELA_CHECK_GE(params.city_fraction, 0.0);
  NELA_CHECK_GE(params.road_fraction, 0.0);
  NELA_CHECK_LE(params.city_fraction + params.road_fraction, 1.0);
  NELA_CHECK_LE(params.min_city_sigma, params.max_city_sigma);

  // Cities with Zipf-like popularity.
  struct City {
    geo::Point center;
    double sigma;
    double weight;
  };
  std::vector<City> cities;
  cities.reserve(params.num_cities);
  double total_city_weight = 0.0;
  for (uint32_t i = 0; i < params.num_cities; ++i) {
    // Mild popularity skew: a few larger towns, a long tail of hamlets.
    const double weight = 1.0 / std::sqrt(static_cast<double>(i + 1));
    total_city_weight += weight;
    cities.push_back(
        City{geo::Point{rng.NextDouble(), rng.NextDouble()},
             rng.NextDouble(params.min_city_sigma, params.max_city_sigma),
             weight});
  }
  auto pick_city = [&]() -> const City& {
    double pick = rng.NextDouble() * total_city_weight;
    for (const City& city : cities) {
      pick -= city.weight;
      if (pick <= 0.0) return city;
    }
    return cities.back();
  };

  // Roads: each city connects to its `roads_per_city` nearest cities, plus
  // the Euclidean MST over all city centers so the road network is one
  // connected web (local nearest-neighbor links alone fragment into
  // islands). Longer roads carry proportionally more POIs (uniform density
  // along the whole network).
  struct Road {
    geo::Point a;
    geo::Point b;
    double length;
  };
  std::vector<Road> roads;
  double total_length = 0.0;
  std::unordered_set<uint64_t> road_set;
  auto add_road = [&](uint32_t i, uint32_t j) {
    const uint64_t key =
        (static_cast<uint64_t>(std::min(i, j)) << 32) | std::max(i, j);
    if (!road_set.insert(key).second) return;
    const double length = geo::Distance(cities[i].center, cities[j].center);
    roads.push_back(Road{cities[i].center, cities[j].center, length});
    total_length += length;
  };
  for (uint32_t i = 0; i < params.num_cities; ++i) {
    std::vector<std::pair<double, uint32_t>> order;
    order.reserve(params.num_cities - 1);
    for (uint32_t j = 0; j < params.num_cities; ++j) {
      if (j == i) continue;
      order.push_back(
          {geo::SquaredDistance(cities[i].center, cities[j].center), j});
    }
    std::sort(order.begin(), order.end());
    const uint32_t degree = std::min<uint32_t>(
        params.roads_per_city, static_cast<uint32_t>(order.size()));
    for (uint32_t r = 0; r < degree; ++r) {
      add_road(i, order[r].second);
    }
  }
  {
    // Prim's MST over city centers (dense O(C^2); C is a few thousand).
    const uint32_t c = params.num_cities;
    std::vector<double> best(c, std::numeric_limits<double>::infinity());
    std::vector<uint32_t> link(c, 0);
    std::vector<uint8_t> in_tree(c, 0);
    best[0] = 0.0;
    for (uint32_t step = 0; step < c; ++step) {
      uint32_t next = c;
      for (uint32_t i = 0; i < c; ++i) {
        if (!in_tree[i] && (next == c || best[i] < best[next])) next = i;
      }
      in_tree[next] = 1;
      if (next != 0) add_road(next, link[next]);
      for (uint32_t i = 0; i < c; ++i) {
        if (in_tree[i]) continue;
        const double d2 =
            geo::SquaredDistance(cities[next].center, cities[i].center);
        if (d2 < best[i]) {
          best[i] = d2;
          link[i] = next;
        }
      }
    }
  }
  NELA_CHECK(!roads.empty());

  std::vector<geo::Point> points;
  points.reserve(params.count);
  for (uint32_t i = 0; i < params.count; ++i) {
    const double what = rng.NextDouble();
    if (what < params.city_fraction) {
      const City& city = pick_city();
      points.push_back(geo::Point{rng.NextGaussian(city.center.x, city.sigma),
                                  rng.NextGaussian(city.center.y, city.sigma)});
    } else if (what < params.city_fraction + params.road_fraction) {
      // Pick a road proportionally to its length, then a point along it.
      double pick = rng.NextDouble() * total_length;
      const Road* road = &roads.back();
      for (const Road& candidate : roads) {
        pick -= candidate.length;
        if (pick <= 0.0) {
          road = &candidate;
          break;
        }
      }
      const double s = rng.NextDouble();
      points.push_back(geo::Point{
          road->a.x + s * (road->b.x - road->a.x) +
              rng.NextGaussian(0.0, params.road_sigma),
          road->a.y + s * (road->b.y - road->a.y) +
              rng.NextGaussian(0.0, params.road_sigma)});
    } else {
      points.push_back(geo::Point{rng.NextDouble(), rng.NextDouble()});
    }
  }
  Dataset dataset(std::move(points));
  dataset.NormalizeToUnitSquare();
  return dataset;
}

Dataset GenerateCaliforniaLike(util::Rng& rng) {
  return GenerateRoadNetwork(RoadNetworkParams{}, rng);
}

Dataset GenerateGrid(uint32_t count) {
  const uint32_t side = static_cast<uint32_t>(
      std::ceil(std::sqrt(static_cast<double>(count))));
  std::vector<geo::Point> points;
  points.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t row = i / side;
    const uint32_t col = i % side;
    const double step = side > 1 ? 1.0 / static_cast<double>(side - 1) : 0.0;
    points.push_back(geo::Point{static_cast<double>(col) * step,
                                static_cast<double>(row) * step});
  }
  return Dataset(std::move(points));
}

}  // namespace nela::data
