// The user population: each record is one mobile user standing at a point
// (§VI: "each POI represents a user who is standing right at its
// coordinates").

#ifndef NELA_DATA_DATASET_H_
#define NELA_DATA_DATASET_H_

#include <cstdint>
#include <vector>

#include "geo/point.h"
#include "geo/rect.h"
#include "util/check.h"

namespace nela::data {

// Dense user identifier: index into the dataset, 0-based.
using UserId = uint32_t;

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<geo::Point> points)
      : points_(std::move(points)) {}

  uint32_t size() const { return static_cast<uint32_t>(points_.size()); }
  bool empty() const { return points_.empty(); }

  const geo::Point& point(UserId id) const {
    NELA_CHECK_LT(id, points_.size());
    return points_[id];
  }

  const std::vector<geo::Point>& points() const { return points_; }

  void Add(const geo::Point& p) { points_.push_back(p); }

  // Bounding box of all points (empty Rect for an empty dataset).
  geo::Rect BoundingBox() const;

  // Affinely rescales all coordinates into the unit square [0,1]^2 (the
  // paper normalizes the POI dataset the same way). Degenerate extents
  // collapse that axis to 0. No-op on an empty dataset.
  void NormalizeToUnitSquare();

 private:
  std::vector<geo::Point> points_;
};

}  // namespace nela::data

#endif  // NELA_DATA_DATASET_H_
