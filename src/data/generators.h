// Synthetic spatial dataset generators.
//
// The paper evaluates on the USGS California POI dataset (104,770 points,
// normalized to the unit square). That file is not redistributable here, so
// GenerateCaliforniaLike produces a statistically similar stand-in: a mixture
// of dense Gaussian clusters (cities/corridors) over a sparse uniform
// background (rural POIs), with the same cardinality and normalization. See
// DESIGN.md "substitutions" for why this preserves the experiments'
// behaviour. Uniform and grid generators support unit tests and ablations.

#ifndef NELA_DATA_GENERATORS_H_
#define NELA_DATA_GENERATORS_H_

#include <cstdint>

#include "data/dataset.h"
#include "util/rng.h"

namespace nela::data {

// The paper's dataset cardinality (Table I).
inline constexpr uint32_t kCaliforniaPoiCount = 104770;

// i.i.d. uniform points in the unit square.
Dataset GenerateUniform(uint32_t count, util::Rng& rng);

// Parameters of the clustered mixture.
struct ClusteredParams {
  uint32_t count = kCaliforniaPoiCount;
  // Number of Gaussian hot spots. Real POI data concentrates on cities and
  // road corridors; the defaults are calibrated so that the resulting WPG
  // at the paper's settings (delta = 2e-3, M = 10) reaches an average
  // degree near the 10.0 the paper reports for M = 10.
  uint32_t num_clusters = 220;
  // Fraction of points drawn from the uniform background (the rest are
  // spread over the hot spots with Zipf-like popularity).
  double background_fraction = 0.05;
  // Standard deviation range of a hot spot, as a fraction of the unit
  // square edge; each hot spot draws its sigma uniformly from this range.
  double min_sigma = 0.0025;
  double max_sigma = 0.012;
};

// Gaussian-mixture-over-background generator; output is normalized to the
// unit square.
Dataset GenerateClustered(const ClusteredParams& params, util::Rng& rng);

// Parameters of the road-network generator.
struct RoadNetworkParams {
  uint32_t count = kCaliforniaPoiCount;
  // Town centers; roads connect each town to a few nearest towns. Many
  // small towns (pockets of a few dozen POIs) separated by thin corridors
  // reproduce the locality structure of real POI data: a handful of
  // cloaking requests can exhaust a pocket, after which a kNN search must
  // stretch along the corridors (the §VI-C degradation).
  uint32_t num_cities = 1000;
  uint32_t roads_per_city = 2;
  // Share of points scattered in Gaussian pockets around towns, along road
  // corridors, and uniform background (the remainder). The defaults put
  // the typical pocket near the paper's default k (subcritical pockets:
  // average WPG degree below k), the regime the paper's reported average
  // degrees imply.
  double city_fraction = 0.35;
  double road_fraction = 0.62;
  // Town pocket extent.
  double min_city_sigma = 3e-4;
  double max_city_sigma = 1e-3;
  // Transverse jitter of points around a road's center line.
  double road_sigma = 2.5e-4;
};

// Cities connected by dense POI corridors ("roads"): the structure of real
// POI datasets such as the paper's California extract. Corridors are
// spatially extended but graph-connected at small proximity thresholds,
// which is what lets a depleted kNN baseline stretch along them (§VI-C).
// Output is normalized to the unit square.
Dataset GenerateRoadNetwork(const RoadNetworkParams& params, util::Rng& rng);

// The default stand-in for the paper's California POI dataset (a road
// network with the paper's cardinality).
Dataset GenerateCaliforniaLike(util::Rng& rng);

// Deterministic grid of ceil(sqrt(count))^2 cells, first `count` occupied.
// Handy for tests that need exactly predictable neighborhoods.
Dataset GenerateGrid(uint32_t count);

}  // namespace nela::data

#endif  // NELA_DATA_GENERATORS_H_
