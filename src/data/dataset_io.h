// Dataset persistence: two-column CSV ("x,y" with a header line), so users
// who do have the original USGS POI file can load it directly.

#ifndef NELA_DATA_DATASET_IO_H_
#define NELA_DATA_DATASET_IO_H_

#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace nela::data {

[[nodiscard]] util::Status SaveCsv(const Dataset& dataset, const std::string& path);

// Loads "x,y" rows; a first line that does not parse as numbers is treated
// as a header and skipped.
[[nodiscard]] util::Result<Dataset> LoadCsv(const std::string& path);

}  // namespace nela::data

#endif  // NELA_DATA_DATASET_IO_H_
