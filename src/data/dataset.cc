#include "data/dataset.h"

namespace nela::data {

geo::Rect Dataset::BoundingBox() const {
  geo::Rect box;
  for (const geo::Point& p : points_) box.ExpandToInclude(p);
  return box;
}

void Dataset::NormalizeToUnitSquare() {
  if (points_.empty()) return;
  const geo::Rect box = BoundingBox();
  const double width = box.Width();
  const double height = box.Height();
  for (geo::Point& p : points_) {
    p.x = width > 0.0 ? (p.x - box.min_x()) / width : 0.0;
    p.y = height > 0.0 ? (p.y - box.min_y()) / height : 0.0;
  }
}

}  // namespace nela::data
