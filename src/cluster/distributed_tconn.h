// Distributed t-connectivity k-clustering (Algorithm 2).
//
// Runs at the host user against the *remaining WPG* (users not yet
// clustered), in three steps:
//
//  1. Span from the host through minimum-weight frontier edges until the
//     cluster reaches size k, then saturate to the full t-connectivity
//     class -- the smallest valid t-connectivity cluster C of the host.
//  2. Check every external border vertex v of C: if v cannot form its own
//     valid t-connectivity cluster in the remaining WPG without C, absorb v
//     (raising t to the cheapest (v, C) edge), re-span, and keep checking
//     newly exposed border vertices. Theorem 4.4: when every border vertex
//     passes, C is isolated -- removing it cannot change anyone else's
//     future cluster.
//  3. Partition C with the centralized algorithm and register every
//     resulting cluster, so later requests from any user of C are free.
//
// Fault tolerance: against a faulty network, every adjacency exchange is
// retransmitted with the configured backoff; a peer whose exchange cannot
// be delivered (crashed, or retry budget exhausted) is excluded from the
// run as churned out, the span is recomputed over the survivors, and the
// final cluster size is re-validated against k -- a shrunken cluster is
// registered invalid rather than silently under-anonymous. A crashed host
// fails the request with kUnavailable.

#ifndef NELA_CLUSTER_DISTRIBUTED_TCONN_H_
#define NELA_CLUSTER_DISTRIBUTED_TCONN_H_

#include <vector>

#include "cluster/centralized_tconn.h"
#include "cluster/clusterer.h"
#include "cluster/registry.h"
#include "graph/wpg.h"
#include "net/network.h"
#include "net/retry.h"
#include "util/rng.h"

namespace nela::cluster {

class DistributedTConnClusterer : public Clusterer {
 public:
  // `registry` and (optional) `network` must outlive the clusterer.
  DistributedTConnClusterer(const graph::Wpg& graph, uint32_t k,
                            Registry* registry,
                            net::Network* network = nullptr);

  using Clusterer::ClusterFor;
  [[nodiscard]] util::Result<ClusteringOutcome> ClusterFor(
      graph::VertexId host, net::RequestScope* scope) override;
  const char* name() const override { return "t-Conn"; }
  uint32_t k() const override { return k_; }

  // Configures loss recovery for adjacency exchanges. `jitter_rng` (may be
  // null, not owned) makes backoff jitter deterministic per seed.
  void SetRetryPolicy(const net::BackoffPolicy& policy,
                      util::Rng* jitter_rng) {
    retry_policy_ = policy;
    retry_rng_ = jitter_rng;
  }

  // Ablation hook: with the isolation check disabled the algorithm stops
  // after step 1 + partition, i.e. it behaves like a local clustering that
  // is *not* cluster-isolated (used by bench_ablation_isolation).
  void set_isolation_check_enabled(bool enabled) {
    isolation_check_enabled_ = enabled;
  }

  // Introspection of the most recent non-reused run, for tests that verify
  // the worked example of Fig. 7.
  struct Trace {
    std::vector<graph::VertexId> smallest_valid_cluster;  // C after step 1
    double initial_t = 0.0;
    uint32_t border_checks = 0;
    uint32_t border_failures = 0;
    std::vector<graph::VertexId> candidate;  // C after step 2
    double final_t = 0.0;
    // Fault-tolerance accounting of the run.
    uint32_t members_lost = 0;
  };
  const Trace& last_trace() const { return trace_; }

 private:
  // Step 3: the production centralized partition applied to the candidate
  // set (with global-order-consistent tie-breaking).
  Partition PartitionSubset(std::vector<graph::VertexId> members) const;

  const graph::Wpg& graph_;
  uint32_t k_;
  Registry* registry_;
  net::Network* network_;
  net::BackoffPolicy retry_policy_;
  util::Rng* retry_rng_ = nullptr;
  bool isolation_check_enabled_ = true;
  Trace trace_;
};

}  // namespace nela::cluster

#endif  // NELA_CLUSTER_DISTRIBUTED_TCONN_H_
