#include "cluster/distributed_tconn.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <unordered_map>
#include <queue>
#include <string>
#include <tuple>
#include <unordered_set>

#include "cluster/centralized_tconn.h"
#include "graph/connectivity.h"

namespace nela::cluster {

namespace {

// Sentinel strictly above every real edge key.
graph::EdgeKey InfiniteKey() {
  return graph::EdgeKey{std::numeric_limits<double>::infinity(), 0, 0};
}

}  // namespace

DistributedTConnClusterer::DistributedTConnClusterer(const graph::Wpg& graph,
                                                     uint32_t k,
                                                     Registry* registry,
                                                     net::Network* network)
    : graph_(graph), k_(k), registry_(registry), network_(network) {
  NELA_CHECK(registry != nullptr);
  NELA_CHECK_EQ(registry->user_count(), graph.vertex_count());
  NELA_CHECK_GE(k, 1u);
}

util::Result<ClusteringOutcome> DistributedTConnClusterer::ClusterFor(
    graph::VertexId host, net::RequestScope* scope) {
  const uint32_t n = graph_.vertex_count();
  if (host >= n) {
    return util::InvalidArgumentError("host vertex out of range");
  }
  if (registry_->IsClustered(host)) {
    return ClusteringOutcome{registry_->ClusterOf(host), 0, true};
  }
  if (network_ != nullptr && !network_->IsAlive(host)) {
    return util::UnavailableError("host " + std::to_string(host) +
                                  " is offline");
  }
  trace_ = Trace{};

  // Vertices this run may still use: unclustered (the remaining WPG) minus
  // anyone excluded after a failed adjacency exchange or crash.
  std::vector<bool> usable(registry_->active());
  std::vector<uint8_t> in_c(n, 0);
  std::vector<uint8_t> involved(n, 0);
  std::vector<uint8_t> exchanged(n, 0);
  uint64_t involved_count = 0;
  auto mark_involved = [&](graph::VertexId v) {
    if (!involved[v]) {
      involved[v] = 1;
      ++involved_count;
    }
  };

  // The host pulls v's adjacency list, retransmitting lost exchanges.
  // Returns false when v churned out (crashed, or undeliverable within the
  // retry budget); v is then excluded from the rest of the run. A vertex
  // that answered -- or at least was contacted -- counts as involved.
  auto exchange = [&](graph::VertexId v) -> bool {
    if (!usable[v]) return false;
    if (v == host || network_ == nullptr || exchanged[v]) {
      mark_involved(v);
      return true;
    }
    net::Message message;
    message.from = v;
    message.to = host;
    message.kind = net::MessageKind::kAdjacencyExchange;
    message.bytes = 8ull * graph_.Degree(v);
    // The adjacency list reveals v's proximity ranks, which the clustering
    // phase is allowed to share; tagged so the audit observer can account
    // for it.
    message.payload.Add(net::FieldTag::kAdjacencyList, v,
                        static_cast<double>(graph_.Degree(v)));
    const net::SendOutcome sent = net::SendWithRetry(
        *network_, message, retry_policy_, retry_rng_, scope);
    if (sent.attempts > 0) mark_involved(v);
    if (sent.delivered) {
      exchanged[v] = 1;
      return true;
    }
    usable[v] = false;
    ++trace_.members_lost;
    return false;
  };

  // --- Step 1: grow the smallest valid t-connectivity cluster. Prim adds
  // vertices in order of bottleneck (minimax-key) distance from the host,
  // so the k-th accepted key is the smallest threshold whose class has at
  // least k members; the class itself is recovered by saturating.
  std::vector<graph::VertexId> c_members = {host};
  in_c[host] = 1;
  mark_involved(host);
  graph::EdgeKey t = graph::EdgeKey::Min();
  {
    using Item = std::pair<graph::EdgeKey, graph::VertexId>;
    auto greater = [](const Item& a, const Item& b) {
      return b.first < a.first ||
             (a.first == b.first && a.second > b.second);
    };
    std::priority_queue<Item, std::vector<Item>, decltype(greater)> heap(
        greater);
    auto push_neighbors = [&](graph::VertexId v) {
      for (const graph::HalfEdge& edge : graph_.Neighbors(v)) {
        if (usable[edge.to] && !in_c[edge.to]) {
          heap.push({KeyOf(v, edge), edge.to});
        }
      }
    };
    push_neighbors(host);
    while (c_members.size() < k_ && !heap.empty()) {
      const auto [key, v] = heap.top();
      heap.pop();
      if (in_c[v] || !usable[v]) continue;  // stale duplicate or churned out
      if (!exchange(v)) continue;           // lost mid-span: excluded
      in_c[v] = 1;
      c_members.push_back(v);
      if (t < key) t = key;
      push_neighbors(v);
    }
  }
  const bool reached_k = c_members.size() >= k_;

  // Saturates C to the full t-class over the usable vertices, re-pulling
  // adjacency from every newly included member; members lost during that
  // exchange shrink the usable set, so the span is recomputed until it is
  // churn-consistent (the usable set only shrinks -- this terminates).
  auto respan = [&](graph::EdgeKey threshold) -> bool {
    for (;;) {
      if (network_ != nullptr && !network_->IsAlive(host)) return false;
      for (graph::VertexId v : c_members) in_c[v] = 0;
      c_members = graph::ThresholdComponent(graph_, host, threshold, &usable);
      bool lost_member = false;
      for (graph::VertexId v : c_members) {
        if (!exchange(v)) lost_member = true;
      }
      if (!lost_member) break;
    }
    for (graph::VertexId v : c_members) in_c[v] = 1;
    return true;
  };
  const util::Status host_crashed = util::UnavailableError(
      "host " + std::to_string(host) + " crashed during clustering");

  if (reached_k && !respan(t)) return host_crashed;
  trace_.smallest_valid_cluster = c_members;
  std::sort(trace_.smallest_valid_cluster.begin(),
            trace_.smallest_valid_cluster.end());
  trace_.initial_t = t.weight;

  if (!reached_k) {
    // The host's entire remaining component (surviving churn) is smaller
    // than k: k-anonymity is unachievable. Register the component as an
    // invalid cluster so the caller can see the degraded guarantee.
    auto registered = registry_->Register(c_members, t.weight,
                                          /*valid=*/false);
    if (!registered.ok()) return registered.status();
    trace_.candidate = trace_.smallest_valid_cluster;
    trace_.final_t = t.weight;
    return ClusteringOutcome{registered.value(), involved_count, false,
                             trace_.members_lost};
  }

  // BFS over edges with key <= t restricted to usable, non-C vertices;
  // stops at `stop_size`. Every visited vertex exchanges adjacency with
  // the host; vertices that churn out are skipped and not counted.
  auto border_component_size = [&](graph::VertexId start, graph::EdgeKey t_cap,
                                   uint32_t stop_size) -> uint32_t {
    std::unordered_set<graph::VertexId> seen;
    std::deque<graph::VertexId> queue;
    seen.insert(start);
    queue.push_back(start);
    uint32_t size = 0;
    while (!queue.empty()) {
      const graph::VertexId u = queue.front();
      queue.pop_front();
      if (!exchange(u)) continue;  // churned out mid-check
      ++size;
      if (size >= stop_size) break;
      for (const graph::HalfEdge& edge : graph_.Neighbors(u)) {
        if (edge.weight > t_cap.weight) break;  // adjacency sorted by weight
        if (KeyOf(u, edge) > t_cap) continue;   // tie refinement
        if (!usable[edge.to] || in_c[edge.to]) continue;
        if (seen.insert(edge.to).second) queue.push_back(edge.to);
      }
    }
    return size;
  };

  // --- Step 2: border-vertex isolation checks (Theorem 4.4).
  if (isolation_check_enabled_) {
    std::deque<graph::VertexId> pending;
    std::vector<uint8_t> enqueued(n, 0);
    auto enqueue_border = [&]() {
      for (graph::VertexId v : c_members) {
        for (const graph::HalfEdge& edge : graph_.Neighbors(v)) {
          const graph::VertexId u = edge.to;
          if (usable[u] && !in_c[u] && !enqueued[u]) {
            enqueued[u] = 1;
            pending.push_back(u);
          }
        }
      }
    };
    enqueue_border();
    while (!pending.empty()) {
      const graph::VertexId v = pending.front();
      pending.pop_front();
      if (in_c[v] || !usable[v]) continue;  // absorbed, or churned out
      // Members of C may have crashed since the last re-span (crash events
      // fire on unrelated sends); evict them first so the isolation check
      // and the absorb threshold run against the surviving C.
      if (network_ != nullptr) {
        bool evicted = false;
        for (graph::VertexId c : c_members) {
          if (!network_->IsAlive(c) && usable[c]) {
            if (c == host) return host_crashed;
            usable[c] = false;
            ++trace_.members_lost;
            evicted = true;
          }
        }
        if (evicted) {
          if (!respan(t)) return host_crashed;
          enqueue_border();
          if (in_c[v]) continue;
        }
      }
      ++trace_.border_checks;
      const uint32_t size = border_component_size(v, t, k_);
      if (size >= k_) continue;  // passes now, passes forever (t only grows)
      if (!usable[v]) continue;  // v itself churned out during the check
      ++trace_.border_failures;
      // Absorb v: the new connectivity is the cheapest edge tying v to C
      // (all of them exceed the old t, otherwise saturation would have
      // included v already).
      graph::EdgeKey t_new = InfiniteKey();
      for (const graph::HalfEdge& edge : graph_.Neighbors(v)) {
        if (in_c[edge.to] && usable[edge.to]) {
          const graph::EdgeKey key = KeyOf(v, edge);
          if (key < t_new) t_new = key;
        }
      }
      // Churn can detach v from C entirely (every C-neighbor crashed); it
      // is then no longer a border vertex of C.
      if (t_new == InfiniteKey()) continue;
      NELA_CHECK(t < t_new);
      t = t_new;
      // Churn during the re-span can disconnect v after all (a member on
      // its only path crashed); isolation is then best-effort, which the
      // final churn re-validation below accounts for.
      if (!respan(t)) return host_crashed;
      enqueue_border();
    }
  }
  trace_.candidate = c_members;
  std::sort(trace_.candidate.begin(), trace_.candidate.end());
  trace_.final_t = t.weight;

  // Final churn re-validation: drop members that crashed after their
  // exchange, and if the surviving cluster fell below k, register it as
  // invalid -- the caller sees the degraded guarantee instead of a
  // silently under-anonymous cluster.
  if (network_ != nullptr) {
    if (!network_->IsAlive(host)) return host_crashed;
    std::vector<graph::VertexId> survivors;
    survivors.reserve(c_members.size());
    for (graph::VertexId v : c_members) {
      if (network_->IsAlive(v)) {
        survivors.push_back(v);
      } else {
        usable[v] = false;
        ++trace_.members_lost;
      }
    }
    c_members.swap(survivors);
    if (c_members.size() < k_) {
      auto registered = registry_->Register(std::move(c_members), t.weight,
                                            /*valid=*/false);
      if (!registered.ok()) return registered.status();
      return ClusteringOutcome{registered.value(), involved_count, false,
                               trace_.members_lost};
    }
  }

  // --- Step 3: all edge weights inside C are known to the host now; run
  // the centralized partition and register every resulting cluster.
  // Production partitioner (Kruskal-freeze) restricted to C: filter the
  // global partition is not possible locally, so run it on the induced
  // subgraph by mapping C into a dense id space.
  Partition partition = PartitionSubset(c_members);
  for (size_t i = 0; i < partition.clusters.size(); ++i) {
    const bool valid = partition.clusters[i].size() >= k_;
    auto registered = registry_->Register(std::move(partition.clusters[i]),
                                          partition.connectivity[i], valid);
    if (!registered.ok()) return registered.status();
  }

  return ClusteringOutcome{registry_->ClusterOf(host), involved_count, false,
                           trace_.members_lost};
}

Partition DistributedTConnClusterer::PartitionSubset(
    std::vector<graph::VertexId> members) const {
  // Build the induced subgraph with dense local ids, run the production
  // centralized partitioner, and translate back. Sorting first makes the
  // local id order agree with the global order, so EdgeKey tie-breaking --
  // and therefore the partition -- matches what the centralized algorithm
  // would produce on the full graph restricted to this subset.
  std::sort(members.begin(), members.end());
  std::unordered_map<graph::VertexId, uint32_t> local;
  local.reserve(members.size());
  for (uint32_t i = 0; i < members.size(); ++i) local[members[i]] = i;
  graph::Wpg induced(static_cast<uint32_t>(members.size()));
  for (const graph::Edge& e :
       graph::InducedEdges(graph_, members)) {
    induced.AddEdge(local.at(e.u), local.at(e.v), e.weight);
  }
  induced.SortAdjacencyByWeight();
  Partition partition = CentralizedKClustering(induced, k_);
  for (auto& cluster : partition.clusters) {
    for (graph::VertexId& v : cluster) v = members[v];
    std::sort(cluster.begin(), cluster.end());
  }
  return partition;
}

}  // namespace nela::cluster
