#include "cluster/distributed_tconn.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <unordered_map>
#include <queue>
#include <tuple>
#include <unordered_set>

#include "cluster/centralized_tconn.h"
#include "graph/connectivity.h"

namespace nela::cluster {

namespace {

// Sentinel strictly above every real edge key.
graph::EdgeKey InfiniteKey() {
  return graph::EdgeKey{std::numeric_limits<double>::infinity(), 0, 0};
}

}  // namespace

DistributedTConnClusterer::DistributedTConnClusterer(const graph::Wpg& graph,
                                                     uint32_t k,
                                                     Registry* registry,
                                                     net::Network* network)
    : graph_(graph), k_(k), registry_(registry), network_(network) {
  NELA_CHECK(registry != nullptr);
  NELA_CHECK_EQ(registry->user_count(), graph.vertex_count());
  NELA_CHECK_GE(k, 1u);
}

uint32_t DistributedTConnClusterer::BorderComponentSize(
    graph::VertexId start, graph::EdgeKey t,
    const std::vector<uint8_t>& in_c, uint32_t stop_size,
    std::vector<uint8_t>* involved, uint64_t* involved_count) {
  const std::vector<bool>& active = registry_->active();
  std::unordered_set<graph::VertexId> seen;
  std::deque<graph::VertexId> queue;
  seen.insert(start);
  queue.push_back(start);
  uint32_t size = 0;
  while (!queue.empty()) {
    const graph::VertexId u = queue.front();
    queue.pop_front();
    ++size;
    if (!(*involved)[u]) {
      (*involved)[u] = 1;
      ++*involved_count;
    }
    if (size >= stop_size) break;
    for (const graph::HalfEdge& edge : graph_.Neighbors(u)) {
      if (edge.weight > t.weight) break;  // adjacency sorted by weight
      if (KeyOf(u, edge) > t) continue;   // tie refinement
      if (!active[edge.to] || in_c[edge.to]) continue;
      if (seen.insert(edge.to).second) queue.push_back(edge.to);
    }
  }
  return size;
}

util::Result<ClusteringOutcome> DistributedTConnClusterer::ClusterFor(
    graph::VertexId host) {
  const uint32_t n = graph_.vertex_count();
  if (host >= n) {
    return util::InvalidArgumentError("host vertex out of range");
  }
  if (registry_->IsClustered(host)) {
    return ClusteringOutcome{registry_->ClusterOf(host), 0, true};
  }
  const std::vector<bool>& active = registry_->active();
  trace_ = Trace{};

  std::vector<uint8_t> in_c(n, 0);
  std::vector<uint8_t> involved(n, 0);
  uint64_t involved_count = 0;
  auto mark_involved = [&](graph::VertexId v) {
    if (!involved[v]) {
      involved[v] = 1;
      ++involved_count;
    }
  };

  // --- Step 1: grow the smallest valid t-connectivity cluster. Prim adds
  // vertices in order of bottleneck (minimax-key) distance from the host,
  // so the k-th accepted key is the smallest threshold whose class has at
  // least k members; the class itself is recovered by saturating.
  std::vector<graph::VertexId> c_members = {host};
  in_c[host] = 1;
  mark_involved(host);
  graph::EdgeKey t = graph::EdgeKey::Min();
  {
    using Item = std::pair<graph::EdgeKey, graph::VertexId>;
    auto greater = [](const Item& a, const Item& b) {
      return b.first < a.first ||
             (a.first == b.first && a.second > b.second);
    };
    std::priority_queue<Item, std::vector<Item>, decltype(greater)> heap(
        greater);
    auto push_neighbors = [&](graph::VertexId v) {
      for (const graph::HalfEdge& edge : graph_.Neighbors(v)) {
        if (active[edge.to] && !in_c[edge.to]) {
          heap.push({KeyOf(v, edge), edge.to});
        }
      }
    };
    push_neighbors(host);
    while (c_members.size() < k_ && !heap.empty()) {
      const auto [key, v] = heap.top();
      heap.pop();
      if (in_c[v]) continue;  // stale duplicate
      in_c[v] = 1;
      c_members.push_back(v);
      mark_involved(v);
      if (t < key) t = key;
      push_neighbors(v);
    }
  }
  const bool reached_k = c_members.size() >= k_;

  auto respan = [&](graph::EdgeKey threshold) {
    for (graph::VertexId v : c_members) in_c[v] = 0;
    c_members = graph::ThresholdComponent(graph_, host, threshold, &active);
    for (graph::VertexId v : c_members) {
      in_c[v] = 1;
      mark_involved(v);
    }
  };

  if (reached_k) respan(t);
  trace_.smallest_valid_cluster = c_members;
  std::sort(trace_.smallest_valid_cluster.begin(),
            trace_.smallest_valid_cluster.end());
  trace_.initial_t = t.weight;

  if (!reached_k) {
    // The host's entire remaining component is smaller than k: k-anonymity
    // is unachievable. Register the component as an invalid cluster so the
    // caller can see the degraded guarantee.
    auto registered = registry_->Register(c_members, t.weight,
                                          /*valid=*/false);
    if (!registered.ok()) return registered.status();
    trace_.candidate = trace_.smallest_valid_cluster;
    trace_.final_t = t.weight;
    return ClusteringOutcome{registered.value(), involved_count, false};
  }

  // --- Step 2: border-vertex isolation checks (Theorem 4.4).
  if (isolation_check_enabled_) {
    std::deque<graph::VertexId> pending;
    std::vector<uint8_t> enqueued(n, 0);
    auto enqueue_border = [&]() {
      for (graph::VertexId v : c_members) {
        for (const graph::HalfEdge& edge : graph_.Neighbors(v)) {
          const graph::VertexId u = edge.to;
          if (active[u] && !in_c[u] && !enqueued[u]) {
            enqueued[u] = 1;
            pending.push_back(u);
          }
        }
      }
    };
    enqueue_border();
    while (!pending.empty()) {
      const graph::VertexId v = pending.front();
      pending.pop_front();
      if (in_c[v]) continue;  // absorbed by an earlier re-span
      ++trace_.border_checks;
      const uint32_t size =
          BorderComponentSize(v, t, in_c, k_, &involved, &involved_count);
      if (size >= k_) continue;  // passes now, passes forever (t only grows)
      ++trace_.border_failures;
      // Absorb v: the new connectivity is the cheapest edge tying v to C
      // (all of them exceed the old t, otherwise saturation would have
      // included v already).
      graph::EdgeKey t_new = InfiniteKey();
      for (const graph::HalfEdge& edge : graph_.Neighbors(v)) {
        if (in_c[edge.to]) {
          const graph::EdgeKey key = KeyOf(v, edge);
          if (key < t_new) t_new = key;
        }
      }
      NELA_CHECK(!(t_new == InfiniteKey()));
      NELA_CHECK(t < t_new);
      t = t_new;
      respan(t);
      NELA_CHECK(in_c[v]);
      enqueue_border();
    }
  }
  trace_.candidate = c_members;
  std::sort(trace_.candidate.begin(), trace_.candidate.end());
  trace_.final_t = t.weight;

  // --- Step 3: all edge weights inside C are known to the host now; run
  // the centralized partition and register every resulting cluster.
  // Production partitioner (Kruskal-freeze) restricted to C: filter the
  // global partition is not possible locally, so run it on the induced
  // subgraph by mapping C into a dense id space.
  Partition partition = PartitionSubset(c_members);
  for (size_t i = 0; i < partition.clusters.size(); ++i) {
    const bool valid = partition.clusters[i].size() >= k_;
    auto registered = registry_->Register(std::move(partition.clusters[i]),
                                          partition.connectivity[i], valid);
    if (!registered.ok()) return registered.status();
  }

  if (network_ != nullptr) {
    for (graph::VertexId v = 0; v < n; ++v) {
      if (involved[v] && v != host) {
        network_->Send(v, host, net::MessageKind::kAdjacencyExchange,
                       8ull * graph_.Degree(v));
      }
    }
  }
  return ClusteringOutcome{registry_->ClusterOf(host), involved_count, false};
}

Partition DistributedTConnClusterer::PartitionSubset(
    std::vector<graph::VertexId> members) const {
  // Build the induced subgraph with dense local ids, run the production
  // centralized partitioner, and translate back. Sorting first makes the
  // local id order agree with the global order, so EdgeKey tie-breaking --
  // and therefore the partition -- matches what the centralized algorithm
  // would produce on the full graph restricted to this subset.
  std::sort(members.begin(), members.end());
  std::unordered_map<graph::VertexId, uint32_t> local;
  local.reserve(members.size());
  for (uint32_t i = 0; i < members.size(); ++i) local[members[i]] = i;
  graph::Wpg induced(static_cast<uint32_t>(members.size()));
  for (const graph::Edge& e :
       graph::InducedEdges(graph_, members)) {
    induced.AddEdge(local.at(e.u), local.at(e.v), e.weight);
  }
  induced.SortAdjacencyByWeight();
  Partition partition = CentralizedKClustering(induced, k_);
  for (auto& cluster : partition.clusters) {
    for (graph::VertexId& v : cluster) v = members[v];
    std::sort(cluster.begin(), cluster.end());
  }
  return partition;
}

}  // namespace nela::cluster
