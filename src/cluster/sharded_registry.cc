#include "cluster/sharded_registry.h"

#include <utility>

#include "util/hash.h"

namespace nela::cluster {

namespace {

// Folds one cluster's fields in exactly Registry::Digest()'s order. The
// no-region sentinel must match the registry's.
void MixCluster(uint64_t* digest, const ClusterInfo& info,
                const std::optional<geo::Rect>& region) {
  util::FnvMix64(digest, info.members.size());
  for (graph::VertexId member : info.members) {
    util::FnvMix64(digest, member);
  }
  util::FnvMix64(digest, info.valid ? 1 : 0);
  if (region.has_value()) {
    util::FnvMix64(digest, util::DoubleBits(region->min_x()));
    util::FnvMix64(digest, util::DoubleBits(region->min_y()));
    util::FnvMix64(digest, util::DoubleBits(region->max_x()));
    util::FnvMix64(digest, util::DoubleBits(region->max_y()));
  } else {
    util::FnvMix64(digest, 0xe0e0e0e0ull);
  }
}

}  // namespace

ShardedRegistry::ShardedRegistry(uint32_t user_count, const ShardMap* map)
    : registry_(std::make_unique<Registry>(user_count)), map_(map) {
  NELA_CHECK(map_ != nullptr);
  NELA_CHECK_EQ(map_->user_count(), user_count);
}

ShardedRegistry::ShardedRegistry(std::unique_ptr<Registry> registry,
                                 const ShardMap* map)
    : registry_(std::move(registry)), map_(map) {
  NELA_CHECK(registry_ != nullptr);
  NELA_CHECK(map_ != nullptr);
  NELA_CHECK_EQ(map_->user_count(), registry_->user_count());
}

ShardId ShardedRegistry::OwnerOf(ClusterId id) const {
  return map_->OwnerOf(registry_->info(id).members);
}

std::vector<ClusterId> ShardedRegistry::OwnedBy(ShardId shard) const {
  NELA_CHECK_LT(shard, shard_count());
  std::vector<ClusterId> owned;
  const uint32_t clusters = registry_->cluster_count();
  for (ClusterId id = 0; id < clusters; ++id) {
    if (OwnerOf(id) == shard) owned.push_back(id);
  }
  return owned;
}

uint32_t ShardedRegistry::CrossShardClusterCount() const {
  uint32_t crossing = 0;
  const uint32_t clusters = registry_->cluster_count();
  for (ClusterId id = 0; id < clusters; ++id) {
    if (map_->CrossesShards(registry_->info(id).members)) ++crossing;
  }
  return crossing;
}

uint64_t ShardedRegistry::ShardDigest(ShardId shard) const {
  NELA_CHECK_LT(shard, shard_count());
  uint64_t digest = util::kFnv64Offset;
  const uint32_t clusters = registry_->cluster_count();
  for (ClusterId id = 0; id < clusters; ++id) {
    if (OwnerOf(id) != shard) continue;
    util::FnvMix64(&digest, id);
    MixCluster(&digest, registry_->info(id), registry_->RegionOf(id));
  }
  return digest;
}

uint64_t ShardedRegistry::ConcatenatedDigest() const {
  // Gather each shard's slice, then merge the slices back into global
  // commit order (slices are ascending, so a K-way min-merge reproduces
  // 0..N-1 exactly when -- and only when -- ownership partitions the
  // registry).
  const uint32_t shards = shard_count();
  std::vector<std::vector<ClusterId>> slices;
  slices.reserve(shards);
  for (ShardId s = 0; s < shards; ++s) slices.push_back(OwnedBy(s));

  uint64_t digest = util::kFnv64Offset;
  std::vector<size_t> cursor(shards, 0);
  const uint32_t clusters = registry_->cluster_count();
  for (uint32_t taken = 0; taken < clusters; ++taken) {
    ShardId best = kNoShard;
    for (ShardId s = 0; s < shards; ++s) {
      if (cursor[s] >= slices[s].size()) continue;
      if (best == kNoShard ||
          slices[s][cursor[s]] < slices[best][cursor[best]]) {
        best = s;
      }
    }
    NELA_CHECK_NE(best, kNoShard);
    const ClusterId id = slices[best][cursor[best]++];
    MixCluster(&digest, registry_->info(id), registry_->RegionOf(id));
  }
  return digest;
}

}  // namespace nela::cluster
