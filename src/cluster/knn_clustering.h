// kNN clustering baseline (§IV, Fig. 4).
//
// Clusters the host with its k-1 nearest *un-clustered* users in the WPG.
// The default expansion follows the paper's §VI-C narrative: take direct
// neighbors in RSS-rank order; when too few of them are still unclustered,
// "further span the WPG" hop by hop, grabbing whatever unclustered users
// the next ring offers -- which "might be far away". A shortest-path
// (Dijkstra) expansion is available for comparison; it picks spatially
// better users at the same communication cost and is used by the ablation
// benches. The baseline is intentionally NOT cluster-isolated: each request
// consumes k users and can stretch what remains, which is the effect
// Figs. 9, 11 and 12 quantify.

#ifndef NELA_CLUSTER_KNN_CLUSTERING_H_
#define NELA_CLUSTER_KNN_CLUSTERING_H_

#include "cluster/clusterer.h"
#include "cluster/registry.h"
#include "graph/wpg.h"
#include "net/network.h"

namespace nela::cluster {

// How equidistant candidates are ordered.
enum class KnnTieBreak {
  kVertexId,       // plain kNN of Fig. 4(a)
  kSmallestDegree, // revised kNN of Fig. 4(b)
};

// Whether a previously clustered requester reuses its cluster.
enum class KnnReuse {
  // Reciprocal: a clustered requester is answered from the registry.
  kReciprocal,
  // The paper's experimental baseline (§VI): every request forms a fresh
  // cluster of exactly k users ("increasing the number of cloaking
  // requests cannot amortize the communication cost"), so a consumed
  // requester ends up in more than one cluster. Requires a Registry built
  // with allow_overlap = true.
  kAlwaysFresh,
};

// How the search expands past the direct neighborhood.
enum class KnnExpansion {
  // Paper semantics: breadth-first rings; within a ring, users are
  // contacted in (discovery edge weight, tie-break) order.
  kHopLayered,
  // Dijkstra by accumulated path weight: spatially tighter clusters from
  // the same information; used by the ablation bench.
  kShortestPath,
};

class KnnClusterer : public Clusterer {
 public:
  KnnClusterer(const graph::Wpg& graph, uint32_t k, Registry* registry,
               net::Network* network = nullptr,
               KnnTieBreak tie_break = KnnTieBreak::kVertexId,
               KnnReuse reuse = KnnReuse::kReciprocal,
               KnnExpansion expansion = KnnExpansion::kHopLayered);

  using Clusterer::ClusterFor;
  [[nodiscard]] util::Result<ClusteringOutcome> ClusterFor(
      graph::VertexId host, net::RequestScope* scope) override;
  const char* name() const override { return "kNN"; }
  uint32_t k() const override { return k_; }
  bool reciprocal() const override { return reuse_ == KnnReuse::kReciprocal; }

 private:
  [[nodiscard]] util::Result<ClusteringOutcome> HopLayered(graph::VertexId host,
                                             net::RequestScope* scope);
  [[nodiscard]] util::Result<ClusteringOutcome> ShortestPath(graph::VertexId host,
                                               net::RequestScope* scope);

  // Registers `members` and performs the shared accounting. `reach` is the
  // weight measure of the farthest member; `involved` the users contacted.
  [[nodiscard]] util::Result<ClusteringOutcome> Finish(
      graph::VertexId host, std::vector<graph::VertexId> members,
      double reach, const std::vector<graph::VertexId>& contacted,
      net::RequestScope* scope);

  const graph::Wpg& graph_;
  uint32_t k_;
  Registry* registry_;
  net::Network* network_;
  KnnTieBreak tie_break_;
  KnnReuse reuse_;
  KnnExpansion expansion_;
};

}  // namespace nela::cluster

#endif  // NELA_CLUSTER_KNN_CLUSTERING_H_
