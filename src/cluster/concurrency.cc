#include "cluster/concurrency.h"

#include <algorithm>
#include <memory>

#include "cluster/distributed_tconn.h"

namespace nela::cluster {

ClaimCoordinator::ClaimCoordinator(uint32_t user_count)
    : holder_(user_count, kNoTicket) {}

Ticket ClaimCoordinator::OpenRequest() {
  util::MutexLock lock(mu_);
  const Ticket ticket = next_ticket_++;
  if (wounded_.size() <= ticket) wounded_.resize(ticket + 1, 0);
  return ticket;
}

Ticket ClaimCoordinator::OpenRequestAt(Ticket ticket) {
  NELA_CHECK_NE(ticket, kNoTicket);
  util::MutexLock lock(mu_);
  if (next_ticket_ <= ticket) next_ticket_ = ticket + 1;
  if (wounded_.size() <= ticket) wounded_.resize(ticket + 1, 0);
  return ticket;
}

bool ClaimCoordinator::TryClaim(Ticket ticket,
                                const std::vector<graph::VertexId>& members) {
  NELA_CHECK_NE(ticket, kNoTicket);
  util::MutexLock lock(mu_);
  // Pass 1: inspect every contended member. An older holder anywhere means
  // the whole claim fails; younger holders will be wounded.
  std::vector<Ticket> to_wound;
  for (graph::VertexId v : members) {
    NELA_CHECK_LT(v, holder_.size());
    const Ticket holder = holder_[v];
    if (holder == kNoTicket || holder == ticket) continue;
    ++conflicts_;
    if (holder < ticket) return false;  // older wins; we retry
    to_wound.push_back(holder);
  }
  // Pass 2: wound every younger holder (revoke all their claims).
  std::sort(to_wound.begin(), to_wound.end());
  to_wound.erase(std::unique(to_wound.begin(), to_wound.end()),
                 to_wound.end());
  for (Ticket victim : to_wound) {
    ++wounds_;
    wounded_[victim] = 1;
    for (Ticket& h : holder_) {
      if (h == victim) h = kNoTicket;
    }
  }
  // Pass 3: take everything.
  for (graph::VertexId v : members) holder_[v] = ticket;
  return true;
}

bool ClaimCoordinator::WasWounded(Ticket ticket) {
  NELA_CHECK_NE(ticket, kNoTicket);
  util::MutexLock lock(mu_);
  if (ticket >= wounded_.size() || !wounded_[ticket]) return false;
  wounded_[ticket] = 0;
  return true;
}

void ClaimCoordinator::Release(Ticket ticket) {
  NELA_CHECK_NE(ticket, kNoTicket);
  util::MutexLock lock(mu_);
  for (Ticket& h : holder_) {
    if (h == ticket) h = kNoTicket;
  }
}

Ticket ClaimCoordinator::HolderOf(graph::VertexId v) const {
  // Lock before the bounds check: holder_ never grows, but the read of
  // its size is guarded state like any other (pre-annotation code checked
  // it before taking the lock -- benign, yet formally racy).
  util::MutexLock lock(mu_);
  NELA_CHECK_LT(v, holder_.size());
  return holder_[v];
}

ConcurrentCloakingSession::ConcurrentCloakingSession(const graph::Wpg& graph,
                                                     uint32_t k,
                                                     Registry* registry)
    : graph_(graph), k_(k), registry_(registry),
      coordinator_(graph.vertex_count()) {
  NELA_CHECK(registry != nullptr);
  NELA_CHECK_EQ(registry->user_count(), graph.vertex_count());
}

util::Result<std::vector<ConcurrentOutcome>>
ConcurrentCloakingSession::RunAll(const std::vector<graph::VertexId>& hosts) {
  enum class State { kIdle, kClaimed, kDone };
  struct Pending {
    graph::VertexId host;
    Ticket ticket;
    ConcurrentOutcome outcome;
    State state = State::kIdle;
    // Speculative partition held while claimed.
    std::vector<ClusterInfo> new_clusters;
  };
  std::vector<Pending> pending;
  pending.reserve(hosts.size());
  for (graph::VertexId host : hosts) {
    if (host >= graph_.vertex_count()) {
      return util::InvalidArgumentError("host out of range");
    }
    pending.push_back(Pending{host, coordinator_.OpenRequest(), {},
                              State::kIdle, {}});
  }

  // Fair round-robin, one step per turn: an idle request computes its
  // candidate and claims it; a claimed request commits on its NEXT turn --
  // leaving a window in which contending requests genuinely wound each
  // other. Wound-wait guarantees the oldest contending request always
  // commits, so every full pass retires at least one request.
  uint32_t remaining = static_cast<uint32_t>(pending.size());
  // Generous safety bound: exceeding it would indicate a livelock bug.
  uint64_t turn_budget =
      32ull * (pending.size() + 1) * (pending.size() + 1) + 64;
  while (remaining > 0) {
    NELA_CHECK_GT(turn_budget--, 0u);
    for (Pending& request : pending) {
      if (request.state == State::kDone) continue;

      if (request.state == State::kClaimed) {
        if (coordinator_.WasWounded(request.ticket)) {
          // An older request revoked our claims: drop the candidate.
          request.new_clusters.clear();
          request.state = State::kIdle;
          ++request.outcome.retries;
          continue;
        }
        // Commit the speculative partition into the authoritative
        // registry (claims make overlapping commits impossible).
        for (const ClusterInfo& info : request.new_clusters) {
          auto committed = registry_->Register(info.members,
                                               info.connectivity, info.valid);
          if (!committed.ok()) return committed.status();
        }
        request.new_clusters.clear();
        request.outcome.cluster_id = registry_->ClusterOf(request.host);
        NELA_CHECK_NE(request.outcome.cluster_id, kNoCluster);
        coordinator_.Release(request.ticket);
        request.state = State::kDone;
        --remaining;
        continue;
      }

      // Idle: fast path first -- someone may have clustered this host.
      if (registry_->IsClustered(request.host)) {
        request.outcome.cluster_id = registry_->ClusterOf(request.host);
        coordinator_.Release(request.ticket);
        request.state = State::kDone;
        --remaining;
        continue;
      }

      // Speculative phase 1 on a snapshot.
      std::unique_ptr<Registry> scratch = registry_->Snapshot();
      const ClusterId first_new = scratch->cluster_count();
      DistributedTConnClusterer clusterer(graph_, k_, scratch.get());
      auto speculative = clusterer.ClusterFor(request.host);
      if (!speculative.ok()) return speculative.status();

      std::vector<graph::VertexId> claim_set;
      std::vector<ClusterInfo> new_clusters;
      for (ClusterId id = first_new; id < scratch->cluster_count(); ++id) {
        const ClusterInfo& info = scratch->info(id);
        claim_set.insert(claim_set.end(), info.members.begin(),
                         info.members.end());
        new_clusters.push_back(info);
      }
      if (!coordinator_.TryClaim(request.ticket, claim_set)) {
        ++request.outcome.retries;  // an older request holds users we need
        continue;
      }
      request.new_clusters = std::move(new_clusters);
      request.state = State::kClaimed;
    }
  }
  std::vector<ConcurrentOutcome> outcomes;
  outcomes.reserve(pending.size());
  for (const Pending& request : pending) outcomes.push_back(request.outcome);
  return outcomes;
}

}  // namespace nela::cluster
