// Phase-1 interface: produce (or reuse) the k-cluster of a host user.

#ifndef NELA_CLUSTER_CLUSTERER_H_
#define NELA_CLUSTER_CLUSTERER_H_

#include <cstdint>

#include "cluster/registry.h"
#include "graph/wpg.h"
#include "net/accounting.h"
#include "util/status.h"

namespace nela::cluster {

struct ClusteringOutcome {
  ClusterId cluster_id = kNoCluster;
  // Number of users that participated in this request (the paper's
  // communication-cost unit: each involved user ships one adjacency
  // message). 0 when the host already had a cluster.
  uint64_t involved_users = 0;
  // True when the request was answered from the registry without running
  // the algorithm (step 3 of Fig. 3).
  bool reused = false;
  // Users excluded mid-run because they crashed or their adjacency
  // exchange could not be delivered within the retry budget (only nonzero
  // for fault-tolerant clusterers running against a faulty network).
  uint32_t members_lost = 0;
};

class Clusterer {
 public:
  virtual ~Clusterer() = default;

  // Finds or reuses the cluster of `host`, registering every newly formed
  // cluster in the registry given at construction. When `scope` is given,
  // network traffic of the run is attributed to that request's accounting
  // scope in addition to the global counters.
  [[nodiscard]] virtual util::Result<ClusteringOutcome> ClusterFor(
      graph::VertexId host, net::RequestScope* scope) = 0;

  // Convenience overload for unscoped (single-request) callers.
  [[nodiscard]] util::Result<ClusteringOutcome> ClusterFor(graph::VertexId host) {
    return ClusterFor(host, nullptr);
  }

  // Short identifier used in benchmark tables ("t-Conn", "kNN", ...).
  virtual const char* name() const = 0;

  // The anonymity requirement this clusterer was configured with; lets the
  // engine re-validate a cluster whose membership shrank through churn.
  virtual uint32_t k() const = 0;

  // True when a previously clustered host is answered from the registry
  // (reciprocity-preserving algorithms). The kNN baseline returns false: it
  // always forms a fresh cluster, which is exactly the reciprocity
  // violation the paper criticizes -- the pipeline's reuse stage must not
  // mask that behavior.
  virtual bool reciprocal() const { return true; }
};

}  // namespace nela::cluster

#endif  // NELA_CLUSTER_CLUSTERER_H_
