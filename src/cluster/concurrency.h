// Concurrency control for simultaneous cloaking requests (the paper's §VII
// future work: "a single user can only join one cluster but can participate
// in the clustering process of multiple host users; our protocols must
// prevent deadlocks while making the best clustering decision").
//
// Model: every clustering request must atomically claim the set of users it
// intends to cluster. Requests that overlap contend; the coordinator grants
// claims with two guarantees:
//
//  * safety -- a user is never part of two committed clusters (reciprocity
//    survives concurrency);
//  * liveness -- contention cannot deadlock: claims are acquired in one
//    atomic all-or-nothing step, and losers abort-and-retry with a
//    deterministic priority (older ticket wins), so some request always
//    commits (wound-wait style, no circular waiting is even possible).
//
// The coordinator is deliberately decoupled from the clustering algorithms:
// phase 1 computes a candidate membership from a registry snapshot, then
// commits it through the coordinator; a conflict means another host claimed
// an overlapping set first, and the request recomputes against the fresh
// registry state. ConcurrentCloakingSession drives that loop.

#ifndef NELA_CLUSTER_CONCURRENCY_H_
#define NELA_CLUSTER_CONCURRENCY_H_

#include <cstdint>
#include <vector>

#include "cluster/clusterer.h"
#include "cluster/registry.h"
#include "graph/wpg.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace nela::cluster {

// Ticket identifying one in-flight cloaking request; lower = older = higher
// priority.
using Ticket = uint64_t;
inline constexpr Ticket kNoTicket = 0;

// Thread safety: every operation is atomic under an internal mutex, so
// genuinely parallel requests (sim::BatchDriver worker threads) and the
// single-threaded round-robin simulation share the same coordinator code.
class ClaimCoordinator {
 public:
  explicit ClaimCoordinator(uint32_t user_count);

  ClaimCoordinator(const ClaimCoordinator&) = delete;
  ClaimCoordinator& operator=(const ClaimCoordinator&) = delete;

  // Registers a new request and returns its ticket (monotonically
  // increasing; older tickets win conflicts).
  Ticket OpenRequest() EXCLUDES(mu_);

  // Registers a request under an explicit, caller-assigned ticket. The
  // sharded service runs one coordinator per shard but needs a GLOBAL
  // wound-wait priority (the request's admission rank), so every involved
  // shard's coordinator must see the same ticket for the same request.
  // Tickets assigned this way must be unique per coordinator and nonzero;
  // auto-assigned tickets from OpenRequest() continue above the highest
  // explicit one.
  Ticket OpenRequestAt(Ticket ticket) EXCLUDES(mu_);

  // Attempts to claim every user in `members` for `ticket`, atomically:
  // either all become held by `ticket`, or nothing changes.
  //
  // Conflict resolution (wound-wait): if some member is held by a YOUNGER
  // ticket, that holder's claims are revoked ("wounded") and the claim
  // succeeds -- the wounded request observes its loss via WasWounded() and
  // must retry. If some member is held by an OLDER ticket, the claim fails
  // and the caller should recompute/retry. Returns true on success.
  bool TryClaim(Ticket ticket, const std::vector<graph::VertexId>& members)
      EXCLUDES(mu_);

  // True when another (older) request revoked this ticket's claims; the
  // wounded request must drop its candidate and retry with a fresh
  // snapshot. Resets the flag.
  bool WasWounded(Ticket ticket) EXCLUDES(mu_);

  // Releases every claim of `ticket` (after commit or abort).
  void Release(Ticket ticket) EXCLUDES(mu_);

  // Holder of user `v`, or kNoTicket.
  Ticket HolderOf(graph::VertexId v) const EXCLUDES(mu_);

  uint64_t conflicts_observed() const EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return conflicts_;
  }
  uint64_t wounds_inflicted() const EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return wounds_;
  }

  // Names the coordinator lock for cross-class ordering annotations: the
  // sharded service driver acquires its run lock strictly before any
  // shard's coordinator lock (see sim/sharded_service_driver.cc).
  util::Mutex& mu() const RETURN_CAPABILITY(mu_) { return mu_; }

 private:
  mutable util::Mutex mu_;
  std::vector<Ticket> holder_ GUARDED_BY(mu_);
  // Indexed by ticket (grown on demand).
  std::vector<uint8_t> wounded_ GUARDED_BY(mu_);
  Ticket next_ticket_ GUARDED_BY(mu_) = 1;
  uint64_t conflicts_ GUARDED_BY(mu_) = 0;
  uint64_t wounds_ GUARDED_BY(mu_) = 0;
};

// Serializes concurrent cloaking requests on top of any Clusterer.
//
// Simulates R hosts whose requests arrive "almost at the same time": each
// request repeatedly (a) snapshots the registry, (b) runs phase 1 on a
// scratch registry to obtain a candidate partition, (c) claims the
// candidate's users through the coordinator, and (d) commits into the real
// registry -- retrying from (a) whenever it loses a claim or was wounded.
// The commit order interleaves round-robin, so claims genuinely contend.
struct ConcurrentOutcome {
  ClusterId cluster_id = kNoCluster;
  uint32_t retries = 0;
};

class ConcurrentCloakingSession {
 public:
  // `registry` is the authoritative store; must outlive the session.
  ConcurrentCloakingSession(const graph::Wpg& graph, uint32_t k,
                            Registry* registry);

  // Runs all `hosts` "concurrently" (fair round-robin interleaving of
  // claim attempts) and returns each host's final cluster. Guarantees:
  // every user ends in at most one cluster; no deadlock (the oldest
  // request in any conflict always makes progress).
  util::Result<std::vector<ConcurrentOutcome>> RunAll(
      const std::vector<graph::VertexId>& hosts);

  const ClaimCoordinator& coordinator() const { return coordinator_; }

 private:
  const graph::Wpg& graph_;
  uint32_t k_;
  Registry* registry_;
  ClaimCoordinator coordinator_;
};

}  // namespace nela::cluster

#endif  // NELA_CLUSTER_CONCURRENCY_H_
