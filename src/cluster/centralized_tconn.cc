#include "cluster/centralized_tconn.h"

#include <algorithm>
#include <unordered_map>

#include "graph/connectivity.h"
#include "graph/union_find.h"

namespace nela::cluster {

Partition CentralizedKClustering(const graph::Wpg& graph, uint32_t k) {
  NELA_CHECK_GE(k, 1u);
  const uint32_t n = graph.vertex_count();

  std::vector<uint32_t> order(graph.edge_count());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  const std::vector<graph::Edge>& edges = graph.edges();
  std::sort(order.begin(), order.end(), [&edges](uint32_t a, uint32_t b) {
    return KeyOf(edges[a]) < KeyOf(edges[b]);
  });

  graph::UnionFind dsu(n);
  // Connectivity (weight of the latest merge) per current DSU root.
  std::vector<double> connectivity(n, 0.0);
  for (uint32_t index : order) {
    const graph::Edge& e = edges[index];
    const uint32_t ru = dsu.Find(e.u);
    const uint32_t rv = dsu.Find(e.v);
    if (ru == rv) continue;
    // Freeze rule: once both sides are valid clusters on their own,
    // merging them could only grow the MEW -- keep them apart.
    if (dsu.SizeOf(ru) >= k && dsu.SizeOf(rv) >= k) continue;
    dsu.Union(ru, rv);
    connectivity[dsu.Find(e.u)] = e.weight;
  }

  std::unordered_map<uint32_t, uint32_t> cluster_of_root;
  Partition out;
  for (uint32_t v = 0; v < n; ++v) {
    const uint32_t root = dsu.Find(v);
    auto [it, inserted] = cluster_of_root.try_emplace(
        root, static_cast<uint32_t>(out.clusters.size()));
    if (inserted) {
      out.clusters.emplace_back();
      out.connectivity.push_back(connectivity[root]);
    }
    out.clusters[it->second].push_back(v);
  }
  return RefinePartition(graph, std::move(out), k);
}

namespace {

// Recursively splits one cluster along its internal MST; emits results.
// `edges` must be exactly the induced edges of `members`.
void RefineCluster(std::vector<graph::VertexId> members,
                   std::vector<graph::Edge> edges, uint32_t k,
                   Partition* out) {
  if (members.size() < 2) {
    out->clusters.push_back(std::move(members));
    out->connectivity.push_back(0.0);
    return;
  }
  // MST of the induced subgraph under the strict total order.
  std::sort(edges.begin(), edges.end(),
            [](const graph::Edge& a, const graph::Edge& b) {
              return KeyOf(a) < KeyOf(b);
            });
  std::unordered_map<graph::VertexId, uint32_t> index;
  index.reserve(members.size());
  for (uint32_t i = 0; i < members.size(); ++i) index[members[i]] = i;

  graph::UnionFind dsu(static_cast<uint32_t>(members.size()));
  std::vector<graph::Edge> mst;
  mst.reserve(members.size() - 1);
  double connectivity = 0.0;
  for (const graph::Edge& e : edges) {
    if (dsu.Union(index.at(e.u), index.at(e.v))) {
      mst.push_back(e);
      connectivity = e.weight;
    }
  }
  NELA_CHECK_EQ(mst.size(), members.size() - 1);  // input is connected

  if (members.size() >= 2ull * k) {
    // Subtree sizes of the MST rooted at local vertex 0.
    std::vector<std::vector<std::pair<uint32_t, uint32_t>>> tree(
        members.size());  // (neighbor, mst edge index)
    for (uint32_t m = 0; m < mst.size(); ++m) {
      const uint32_t a = index.at(mst[m].u);
      const uint32_t b = index.at(mst[m].v);
      tree[a].push_back({b, m});
      tree[b].push_back({a, m});
    }
    std::vector<int32_t> parent(members.size(), -1);
    std::vector<uint32_t> dfs_order;
    dfs_order.reserve(members.size());
    std::vector<uint32_t> stack = {0};
    std::vector<uint8_t> seen(members.size(), 0);
    seen[0] = 1;
    while (!stack.empty()) {
      const uint32_t v = stack.back();
      stack.pop_back();
      dfs_order.push_back(v);
      for (const auto& [to, m] : tree[v]) {
        if (!seen[to]) {
          seen[to] = 1;
          parent[to] = static_cast<int32_t>(v);
          stack.push_back(to);
        }
      }
    }
    std::vector<uint32_t> subtree(members.size(), 1);
    for (auto it = dfs_order.rbegin(); it != dfs_order.rend(); ++it) {
      if (parent[*it] >= 0) subtree[parent[*it]] += subtree[*it];
    }

    // Heaviest MST edge whose removal keeps both sides valid.
    for (auto it = mst.rbegin(); it != mst.rend(); ++it) {
      const uint32_t a = index.at(it->u);
      const uint32_t b = index.at(it->v);
      const uint32_t child =
          parent[a] == static_cast<int32_t>(b) ? a : b;
      const uint32_t below = subtree[child];
      const uint32_t above =
          static_cast<uint32_t>(members.size()) - below;
      if (below < k || above < k) continue;
      // Split: vertices in `child`'s subtree vs the rest.
      std::vector<uint8_t> in_below(members.size(), 0);
      std::vector<uint32_t> walk = {child};
      in_below[child] = 1;
      while (!walk.empty()) {
        const uint32_t v = walk.back();
        walk.pop_back();
        for (const auto& [to, m] : tree[v]) {
          if (parent[to] == static_cast<int32_t>(v) && !in_below[to]) {
            in_below[to] = 1;
            walk.push_back(to);
          }
        }
      }
      std::vector<graph::VertexId> side_a;
      std::vector<graph::VertexId> side_b;
      for (uint32_t i = 0; i < members.size(); ++i) {
        (in_below[i] ? side_a : side_b).push_back(members[i]);
      }
      std::vector<graph::Edge> edges_a;
      std::vector<graph::Edge> edges_b;
      for (const graph::Edge& e : edges) {
        const bool u_below = in_below[index.at(e.u)];
        const bool v_below = in_below[index.at(e.v)];
        if (u_below && v_below) {
          edges_a.push_back(e);
        } else if (!u_below && !v_below) {
          edges_b.push_back(e);
        }
        // Crossing edges (the cut) vanish from both sides.
      }
      RefineCluster(std::move(side_a), std::move(edges_a), k, out);
      RefineCluster(std::move(side_b), std::move(edges_b), k, out);
      return;
    }
  }
  std::sort(members.begin(), members.end());
  out->clusters.push_back(std::move(members));
  out->connectivity.push_back(connectivity);
}

}  // namespace

Partition RefinePartition(const graph::Wpg& graph, Partition partition,
                          uint32_t k) {
  // Bucket each intra-cluster edge of an oversized cluster in one pass over
  // the edge list (re-scanning all edges per cluster is quadratic in
  // practice on large graphs).
  std::unordered_map<graph::VertexId, uint32_t> cluster_of;
  for (size_t i = 0; i < partition.clusters.size(); ++i) {
    if (partition.clusters[i].size() < 2ull * k) continue;
    for (graph::VertexId v : partition.clusters[i]) {
      cluster_of.emplace(v, static_cast<uint32_t>(i));
    }
  }
  std::unordered_map<uint32_t, std::vector<graph::Edge>> edges_of;
  for (const graph::Edge& e : graph.edges()) {
    auto u_it = cluster_of.find(e.u);
    if (u_it == cluster_of.end()) continue;
    auto v_it = cluster_of.find(e.v);
    if (v_it == cluster_of.end() || u_it->second != v_it->second) continue;
    edges_of[u_it->second].push_back(e);
  }

  Partition out;
  for (size_t i = 0; i < partition.clusters.size(); ++i) {
    if (partition.clusters[i].size() < 2ull * k) {
      out.clusters.push_back(std::move(partition.clusters[i]));
      out.connectivity.push_back(partition.connectivity[i]);
      continue;
    }
    RefineCluster(std::move(partition.clusters[i]),
                  std::move(edges_of[static_cast<uint32_t>(i)]), k, &out);
  }
  return out;
}

Partition ReferenceCentralizedKClustering(
    const graph::Wpg& graph, const std::vector<graph::VertexId>& subset,
    uint32_t k) {
  NELA_CHECK_GE(k, 1u);
  // Naive freeze semantics: repeatedly merge across the globally smallest
  // eligible edge (one whose sides are distinct components and at least
  // one side is still smaller than k). Independent of the DSU fast path.
  std::vector<graph::Edge> edges = graph::InducedEdges(graph, subset);
  std::sort(edges.begin(), edges.end(),
            [](const graph::Edge& a, const graph::Edge& b) {
              return KeyOf(a) < KeyOf(b);
            });
  std::unordered_map<graph::VertexId, uint32_t> comp_of;
  std::vector<std::vector<graph::VertexId>> comps;
  std::vector<double> conn;
  for (graph::VertexId v : subset) {
    comp_of[v] = static_cast<uint32_t>(comps.size());
    comps.push_back({v});
    conn.push_back(0.0);
  }
  bool merged = true;
  while (merged) {
    merged = false;
    for (const graph::Edge& e : edges) {
      const uint32_t a = comp_of.at(e.u);
      const uint32_t b = comp_of.at(e.v);
      if (a == b) continue;
      if (comps[a].size() >= k && comps[b].size() >= k) continue;
      // Merge b into a.
      for (graph::VertexId v : comps[b]) {
        comp_of[v] = a;
        comps[a].push_back(v);
      }
      comps[b].clear();
      conn[a] = e.weight;
      merged = true;
      break;  // restart the scan from the smallest edge
    }
  }
  Partition out;
  for (uint32_t c = 0; c < comps.size(); ++c) {
    if (comps[c].empty()) continue;
    std::sort(comps[c].begin(), comps[c].end());
    out.clusters.push_back(std::move(comps[c]));
    out.connectivity.push_back(conn[c]);
  }
  return RefinePartition(graph, std::move(out), k);
}

namespace {

// Recursive step of the literal pseudocode: `component` is connected in
// the subgraph induced by the original subset. Removes edges one at a time
// in descending key order until the component disconnects; recurses when
// both sides are valid.
void PartitionConnected(const graph::Wpg& graph,
                        std::vector<graph::VertexId> component, uint32_t k,
                        Partition* out) {
  if (component.size() == 1) {
    out->clusters.push_back(std::move(component));
    out->connectivity.push_back(0.0);
    return;
  }

  std::vector<graph::Edge> edges = graph::InducedEdges(graph, component);
  NELA_CHECK(!edges.empty());  // connected with >= 2 vertices
  std::sort(edges.begin(), edges.end(),
            [](const graph::Edge& a, const graph::Edge& b) {
              return KeyOf(b) < KeyOf(a);  // descending
            });

  std::unordered_map<graph::VertexId, uint32_t> index;
  index.reserve(component.size());
  for (uint32_t i = 0; i < component.size(); ++i) index[component[i]] = i;

  // Pop edges from the descending queue until the component disconnects.
  for (size_t removed = 1; removed <= edges.size(); ++removed) {
    graph::UnionFind dsu(static_cast<uint32_t>(component.size()));
    for (size_t j = removed; j < edges.size(); ++j) {
      dsu.Union(index.at(edges[j].u), index.at(edges[j].v));
    }
    if (dsu.set_count() == 1) continue;  // still connected; keep removing
    NELA_CHECK_EQ(dsu.set_count(), 2u);  // single-edge removal: two sides
    std::unordered_map<uint32_t, std::vector<graph::VertexId>> groups;
    for (uint32_t i = 0; i < component.size(); ++i) {
      groups[dsu.Find(i)].push_back(component[i]);
    }
    std::vector<std::vector<graph::VertexId>> parts;
    for (auto& [root, members] : groups) parts.push_back(std::move(members));
    const bool all_valid = parts[0].size() >= k && parts[1].size() >= k;
    if (!all_valid) {
      // A further partition would create an invalid cluster: stop.
      out->clusters.push_back(std::move(component));
      out->connectivity.push_back(edges[removed - 1].weight);
      return;
    }
    std::sort(parts.begin(), parts.end(), [](const auto& a, const auto& b) {
      return a.front() < b.front();
    });
    for (auto& part : parts) {
      PartitionConnected(graph, std::move(part), k, out);
    }
    return;
  }
  NELA_CHECK(false);  // a connected component always disconnects eventually
}

}  // namespace

Partition LiteralFirstDisconnectKClustering(
    const graph::Wpg& graph, const std::vector<graph::VertexId>& subset,
    uint32_t k) {
  NELA_CHECK_GE(k, 1u);
  Partition out;
  for (auto& component : graph::InducedComponents(graph, subset)) {
    PartitionConnected(graph, std::move(component), k, &out);
  }
  return out;
}

CentralizedTConnClusterer::CentralizedTConnClusterer(const graph::Wpg& graph,
                                                     uint32_t k,
                                                     Registry* registry,
                                                     net::Network* network)
    : graph_(graph), k_(k), registry_(registry), network_(network) {
  NELA_CHECK(registry != nullptr);
  NELA_CHECK_EQ(registry->user_count(), graph.vertex_count());
  NELA_CHECK_GE(k, 1u);
}

util::Result<ClusteringOutcome> CentralizedTConnClusterer::ClusterFor(
    graph::VertexId host, net::RequestScope* scope) {
  if (host >= graph_.vertex_count()) {
    return util::InvalidArgumentError("host vertex out of range");
  }
  if (registry_->IsClustered(host)) {
    return ClusteringOutcome{registry_->ClusterOf(host), 0, true};
  }
  // First cloaking request: the anonymizer has everyone's proximity
  // information (each of the |D| users submits one adjacency message) and
  // clusters the entire WPG at once.
  NELA_CHECK(!partitioned_);
  Partition partition = CentralizedKClustering(graph_, k_);
  for (size_t i = 0; i < partition.clusters.size(); ++i) {
    const bool valid = partition.clusters[i].size() >= k_;
    auto registered = registry_->Register(std::move(partition.clusters[i]),
                                          partition.connectivity[i], valid);
    if (!registered.ok()) return registered.status();
  }
  partitioned_ = true;
  const uint64_t involved = graph_.vertex_count();
  if (network_ != nullptr) {
    for (graph::VertexId v = 0; v < graph_.vertex_count(); ++v) {
      // Payload: the adjacency list (8 bytes per entry, id + weight packed).
      net::Message message;
      message.from = v;
      message.to = host;
      message.kind = net::MessageKind::kAdjacencyExchange;
      message.bytes = 8ull * graph_.Degree(v);
      message.payload.Add(net::FieldTag::kAdjacencyList, v,
                          static_cast<double>(graph_.Degree(v)));
      network_->Send(message, scope);
    }
  }
  return ClusteringOutcome{registry_->ClusterOf(host), involved, false};
}

}  // namespace nela::cluster
