// Spatial shard map: the ownership partition of the unit square.
//
// The sharded anonymizer splits the normalized dataset domain [0,1]^2 into
// a grid of K shards. Every user has a *home shard* -- the grid cell its
// coordinate falls into -- and every cluster has an *owner shard*, defined
// as the home shard of its smallest member id. Both functions depend only
// on the dataset and K, never on execution order, which is what keeps the
// per-shard registry digests deterministic across thread counts and the
// global digest independent of K: the partition relabels ownership, it
// never changes what gets clustered.
//
// Grid geometry: cols = ceil(sqrt(K)), rows = ceil(K / cols); cell indexes
// past K-1 (possible only for non-square K) are clamped onto the last
// shard. K in {1, 4, 16} -- the counts the determinism matrix exercises --
// tile exactly.
//
// The owner-of-a-cluster rule deliberately uses the minimum member rather
// than, say, the host that formed the cluster: a cluster's membership is
// immutable and sorted, so ownership is a pure function of the committed
// registry state and can be recomputed identically by recovery, by the
// digest walk, and by every thread.

#ifndef NELA_CLUSTER_SHARD_MAP_H_
#define NELA_CLUSTER_SHARD_MAP_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "geo/point.h"
#include "graph/wpg.h"
#include "util/check.h"

namespace nela::cluster {

// Dense shard index, 0-based.
using ShardId = uint32_t;
inline constexpr ShardId kNoShard = 0xffffffffu;

class ShardMap {
 public:
  // Precomputes every user's home shard from its dataset coordinate.
  // Coordinates are expected in (or near) the unit square; out-of-range
  // points clamp to the border cells. Requires shard_count >= 1.
  ShardMap(const data::Dataset& dataset, uint32_t shard_count);

  ShardMap(const ShardMap&) = delete;
  ShardMap& operator=(const ShardMap&) = delete;

  uint32_t shard_count() const { return shard_count_; }
  uint32_t user_count() const {
    return static_cast<uint32_t>(home_of_.size());
  }
  uint32_t grid_cols() const { return cols_; }
  uint32_t grid_rows() const { return rows_; }

  ShardId HomeShardOf(data::UserId user) const {
    NELA_CHECK_LT(user, home_of_.size());
    return home_of_[user];
  }

  // Grid cell of an arbitrary point (clamped onto the grid).
  ShardId ShardOfPoint(const geo::Point& p) const;

  // Owner shard of a cluster: the home shard of its minimum member.
  ShardId OwnerOf(const std::vector<graph::VertexId>& members) const;

  // True when some member's home shard differs from the owner shard --
  // the cluster straddles a shard boundary.
  bool CrossesShards(const std::vector<graph::VertexId>& members) const;

  uint32_t users_in(ShardId shard) const {
    NELA_CHECK_LT(shard, shard_count_);
    return users_in_[shard];
  }

 private:
  uint32_t shard_count_;
  uint32_t cols_;
  uint32_t rows_;
  std::vector<ShardId> home_of_;
  std::vector<uint32_t> users_in_;
};

}  // namespace nela::cluster

#endif  // NELA_CLUSTER_SHARD_MAP_H_
