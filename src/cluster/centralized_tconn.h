// Centralized t-connectivity k-clustering (Algorithm 1).
//
// Partitions a WPG into the *smallest valid t-connectivity clusters*:
// recursively split each cluster by removing its heaviest edges until any
// further split would create a cluster smaller than k. Edges are ordered by
// the strict total order graph::EdgeKey: the paper's pseudocode pops one
// edge at a time from a sort, which leaves tie order implementation-
// defined, and the experiments' RSS-rank weights are full of ties -- an
// unrefined (batch) tie treatment produces giant unsplittable clusters.
//
// Three implementations:
//  * CentralizedKClustering -- production path, O(E log E): Kruskal over
//    ascending edge keys that "freezes" a merge when both sides already
//    have >= k members. Bottom-up growth of t-connectivity classes that
//    stops exactly when a class is valid and so is every neighbor that
//    could still claim it -- the constructive reading of "partition until
//    a further partition would be invalid".
//  * ReferenceCentralizedKClustering -- same semantics, independently
//    coded as a naive repeated minimum-eligible-edge scan; the oracle for
//    the equivalence property tests.
//  * LiteralFirstDisconnectKClustering -- verbatim transcription of the
//    paper's top-down pseudocode (remove edges in descending order until
//    the first disconnection; recurse only if both sides are valid). It
//    agrees with the other two on the paper's worked example (Fig. 6), but
//    on realistic WPGs its first disconnection usually carves off a single
//    min-degree vertex, the split is invalid, and the whole component is
//    returned as one giant cluster. We keep it for study and document this
//    degeneracy in EXPERIMENTS.md; it must not be used in production.

#ifndef NELA_CLUSTER_CENTRALIZED_TCONN_H_
#define NELA_CLUSTER_CENTRALIZED_TCONN_H_

#include <vector>

#include "cluster/clusterer.h"
#include "cluster/registry.h"
#include "graph/wpg.h"
#include "net/network.h"

namespace nela::cluster {

struct Partition {
  // Disjoint vertex sets covering the input, each sorted ascending.
  std::vector<std::vector<graph::VertexId>> clusters;
  // connectivity[i]: smallest t for which clusters[i] is one t-connectivity
  // class (its MST bottleneck weight; 0 for singletons).
  std::vector<double> connectivity;
};

// Partitions the whole graph. Clusters smaller than k appear only where an
// entire connected component is smaller than k. Includes the MST
// refinement post-pass (below).
Partition CentralizedKClustering(const graph::Wpg& graph, uint32_t k);

// Post-pass shared by the implementations: any cluster with >= 2k members
// is split further by cutting its heaviest internal MST edges (in the
// strict total order) as long as both sides keep >= k members, recursively.
// Freezing alone can chain-absorb many sub-k pieces into one long cluster;
// the refinement cuts such chains back toward k-sized, minimum-MEW groups
// without ever violating validity. Deterministic, and a function of each
// cluster's induced subgraph only (so it preserves cluster isolation).
Partition RefinePartition(const graph::Wpg& graph, Partition partition,
                          uint32_t k);

// Same semantics restricted to the subgraph induced by `subset`,
// independently implemented (naive scan) as a test oracle.
Partition ReferenceCentralizedKClustering(
    const graph::Wpg& graph, const std::vector<graph::VertexId>& subset,
    uint32_t k);

// Verbatim Algorithm 1 pseudocode (first-disconnect recursion) over the
// subgraph induced by `subset`. See the file comment for why this is kept
// for study only.
Partition LiteralFirstDisconnectKClustering(
    const graph::Wpg& graph, const std::vector<graph::VertexId>& subset,
    uint32_t k);

// Clusterer adapter modeling the anonymizer deployment (path ¬ in Fig. 3):
// the first request makes every user submit its proximity information to the
// anonymizer (communication cost |D|), which then clusters the entire WPG;
// all later requests are answered from the registry for free.
class CentralizedTConnClusterer : public Clusterer {
 public:
  // `registry` must be empty and outlive the clusterer; `network` is
  // optional (message/byte accounting of the submission flood).
  CentralizedTConnClusterer(const graph::Wpg& graph, uint32_t k,
                            Registry* registry,
                            net::Network* network = nullptr);

  using Clusterer::ClusterFor;
  [[nodiscard]] util::Result<ClusteringOutcome> ClusterFor(
      graph::VertexId host, net::RequestScope* scope) override;
  const char* name() const override { return "centralized t-Conn"; }
  uint32_t k() const override { return k_; }

 private:
  const graph::Wpg& graph_;
  uint32_t k_;
  Registry* registry_;
  net::Network* network_;
  bool partitioned_ = false;
};

}  // namespace nela::cluster

#endif  // NELA_CLUSTER_CENTRALIZED_TCONN_H_
