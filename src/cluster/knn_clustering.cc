#include "cluster/knn_clustering.h"

#include <algorithm>
#include <queue>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

namespace nela::cluster {

KnnClusterer::KnnClusterer(const graph::Wpg& graph, uint32_t k,
                           Registry* registry, net::Network* network,
                           KnnTieBreak tie_break, KnnReuse reuse,
                           KnnExpansion expansion)
    : graph_(graph), k_(k), registry_(registry), network_(network),
      tie_break_(tie_break), reuse_(reuse), expansion_(expansion) {
  NELA_CHECK(registry != nullptr);
  NELA_CHECK_EQ(registry->user_count(), graph.vertex_count());
  NELA_CHECK_GE(k, 1u);
}

util::Result<ClusteringOutcome> KnnClusterer::ClusterFor(
    graph::VertexId host, net::RequestScope* scope) {
  if (host >= graph_.vertex_count()) {
    return util::InvalidArgumentError("host vertex out of range");
  }
  if (reuse_ == KnnReuse::kReciprocal && registry_->IsClustered(host)) {
    return ClusteringOutcome{registry_->ClusterOf(host), 0, true};
  }
  return expansion_ == KnnExpansion::kHopLayered ? HopLayered(host, scope)
                                                 : ShortestPath(host, scope);
}

util::Result<ClusteringOutcome> KnnClusterer::Finish(
    graph::VertexId host, std::vector<graph::VertexId> members, double reach,
    const std::vector<graph::VertexId>& contacted, net::RequestScope* scope) {
  const bool valid = members.size() >= k_;
  auto registered = registry_->Register(std::move(members), reach, valid);
  if (!registered.ok()) return registered.status();
  if (network_ != nullptr) {
    for (graph::VertexId v : contacted) {
      if (v != host) {
        net::Message message;
        message.from = v;
        message.to = host;
        message.kind = net::MessageKind::kAdjacencyExchange;
        message.bytes = 8ull * graph_.Degree(v);
        message.payload.Add(net::FieldTag::kAdjacencyList, v,
                            static_cast<double>(graph_.Degree(v)));
        network_->Send(message, scope);
      }
    }
  }
  return ClusteringOutcome{registered.value(),
                           static_cast<uint64_t>(contacted.size()), false};
}

util::Result<ClusteringOutcome> KnnClusterer::HopLayered(
    graph::VertexId host, net::RequestScope* scope) {
  // Ring 0 is the host; each subsequent ring is discovered from the
  // adjacency lists of the users contacted in the previous ring. Within a
  // ring, users are contacted in (cheapest discovery edge, tie-break)
  // order until k members are gathered.
  std::vector<graph::VertexId> members = {host};
  std::vector<graph::VertexId> contacted = {host};
  std::unordered_set<graph::VertexId> seen = {host};
  std::vector<graph::VertexId> frontier = {host};
  double reach = 0.0;

  while (members.size() < k_ && !frontier.empty()) {
    // Discover the next ring.
    std::unordered_map<graph::VertexId, double> discovery;
    for (graph::VertexId v : frontier) {
      for (const graph::HalfEdge& edge : graph_.Neighbors(v)) {
        if (seen.count(edge.to) > 0) continue;
        auto [it, inserted] = discovery.try_emplace(edge.to, edge.weight);
        if (!inserted && edge.weight < it->second) it->second = edge.weight;
      }
    }
    if (discovery.empty()) break;
    using Key = std::tuple<double, uint32_t, graph::VertexId>;
    std::vector<Key> ring;
    ring.reserve(discovery.size());
    for (const auto& [id, weight] : discovery) {
      const uint32_t tie =
          tie_break_ == KnnTieBreak::kSmallestDegree ? graph_.Degree(id) : id;
      ring.push_back(Key{weight, tie, id});
    }
    std::sort(ring.begin(), ring.end());

    frontier.clear();
    for (const auto& [weight, tie, id] : ring) {
      if (members.size() >= k_) break;  // stop contacting once satisfied
      seen.insert(id);
      contacted.push_back(id);
      frontier.push_back(id);
      if (!registry_->IsClustered(id)) {
        members.push_back(id);
        reach = std::max(reach, weight);
      }
    }
  }
  return Finish(host, std::move(members), reach, contacted, scope);
}

util::Result<ClusteringOutcome> KnnClusterer::ShortestPath(
    graph::VertexId host, net::RequestScope* scope) {
  // Dijkstra from the host; settle vertices in (distance, tie-break) order
  // and harvest un-clustered ones until k are gathered (the host included).
  using Key = std::tuple<double, uint32_t, graph::VertexId>;
  auto key_of = [this](double dist, graph::VertexId v) {
    const uint32_t tie =
        tie_break_ == KnnTieBreak::kSmallestDegree ? graph_.Degree(v) : v;
    return Key{dist, tie, v};
  };

  std::priority_queue<Key, std::vector<Key>, std::greater<Key>> heap;
  std::unordered_map<graph::VertexId, double> best;
  std::unordered_set<graph::VertexId> settled;
  heap.push(key_of(0.0, host));
  best[host] = 0.0;

  std::vector<graph::VertexId> members;
  std::vector<graph::VertexId> contacted;
  double reach = 0.0;
  while (!heap.empty() && members.size() < k_) {
    const auto [dist, tie, v] = heap.top();
    heap.pop();
    auto it = best.find(v);
    if (it == best.end() || dist > it->second || settled.count(v) > 0) {
      continue;
    }
    settled.insert(v);
    contacted.push_back(v);
    if (v == host || !registry_->IsClustered(v)) {
      members.push_back(v);
      reach = dist;
    }
    for (const graph::HalfEdge& edge : graph_.Neighbors(v)) {
      const double next = dist + edge.weight;
      auto found = best.find(edge.to);
      if (found == best.end() || next < found->second) {
        best[edge.to] = next;
        heap.push(key_of(next, edge.to));
      }
    }
  }
  return Finish(host, std::move(members), reach, contacted, scope);
}

}  // namespace nela::cluster
