#include "cluster/registry.h"

#include <algorithm>

#include "util/hash.h"

namespace nela::cluster {

Registry::Registry(uint32_t user_count, bool allow_overlap)
    : allow_overlap_(allow_overlap), user_count_(user_count),
      cluster_of_(user_count, kNoCluster), active_(user_count, true) {}

util::Result<ClusterId> Registry::Register(
    std::vector<graph::VertexId> members, double connectivity, bool valid) {
  if (members.empty()) {
    return util::InvalidArgumentError("cluster must have members");
  }
  util::MutexLock lock(mu_);
  for (graph::VertexId v : members) {
    if (v >= cluster_of_.size()) {
      return util::InvalidArgumentError("member id out of range");
    }
    if (cluster_of_[v] != kNoCluster && !allow_overlap_) {
      return util::FailedPreconditionError(
          "user already clustered; reciprocity forbids reassignment");
    }
  }
  std::sort(members.begin(), members.end());
  for (size_t i = 1; i < members.size(); ++i) {
    if (members[i] == members[i - 1]) {
      return util::InvalidArgumentError("duplicate member");
    }
  }
  const ClusterId id = static_cast<ClusterId>(clusters_.size());
  for (graph::VertexId v : members) {
    if (cluster_of_[v] == kNoCluster) ++clustered_users_;
    cluster_of_[v] = id;
    active_[v] = false;
  }
  clusters_.push_back(
      ClusterInfo{std::move(members), connectivity, valid, std::nullopt});
  ++version_;
  return id;
}

void Registry::SetRegion(ClusterId id, const geo::Rect& region) {
  util::MutexLock lock(mu_);
  NELA_CHECK_LT(id, clusters_.size());
  NELA_CHECK(!clusters_[id].region.has_value());
  NELA_CHECK(!region.empty());
  clusters_[id].region = region;
}

uint64_t Registry::Digest() const {
  util::MutexLock lock(mu_);
  uint64_t digest = util::kFnv64Offset;
  for (const ClusterInfo& info : clusters_) {
    util::FnvMix64(&digest, info.members.size());
    for (graph::VertexId member : info.members) {
      util::FnvMix64(&digest, member);
    }
    util::FnvMix64(&digest, info.valid ? 1 : 0);
    if (info.region.has_value()) {
      util::FnvMix64(&digest, util::DoubleBits(info.region->min_x()));
      util::FnvMix64(&digest, util::DoubleBits(info.region->min_y()));
      util::FnvMix64(&digest, util::DoubleBits(info.region->max_x()));
      util::FnvMix64(&digest, util::DoubleBits(info.region->max_y()));
    } else {
      // Sentinel for "no region yet"; kept stable because recorded digests
      // (tests, recovery assertions) depend on it.
      util::FnvMix64(&digest, 0xe0e0e0e0ull);
    }
  }
  return digest;
}

std::unique_ptr<Registry> Registry::Snapshot(uint64_t* version_out) const {
  util::MutexLock lock(mu_);
  auto copy = std::make_unique<Registry>(user_count_, allow_overlap_);
  // Bypass Register: replay the internal state directly so the copy is an
  // exact membership image (including invalid clusters) at this version.
  // The copy is private to this thread, but its members are still guarded
  // state to the analysis -- take its (uncontended) lock for the writes.
  util::MutexLock copy_lock(copy->mu_);
  copy->cluster_of_ = cluster_of_;
  copy->active_ = active_;
  copy->clustered_users_ = clustered_users_;
  copy->version_ = version_;
  for (const ClusterInfo& info : clusters_) {
    copy->clusters_.push_back(
        ClusterInfo{info.members, info.connectivity, info.valid, std::nullopt});
  }
  if (version_out != nullptr) *version_out = version_;
  return copy;
}

}  // namespace nela::cluster
