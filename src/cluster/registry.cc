#include "cluster/registry.h"

#include <algorithm>

namespace nela::cluster {

Registry::Registry(uint32_t user_count, bool allow_overlap)
    : allow_overlap_(allow_overlap), cluster_of_(user_count, kNoCluster),
      active_(user_count, true) {}

util::Result<ClusterId> Registry::Register(
    std::vector<graph::VertexId> members, double connectivity, bool valid) {
  if (members.empty()) {
    return util::InvalidArgumentError("cluster must have members");
  }
  for (graph::VertexId v : members) {
    if (v >= cluster_of_.size()) {
      return util::InvalidArgumentError("member id out of range");
    }
    if (cluster_of_[v] != kNoCluster && !allow_overlap_) {
      return util::FailedPreconditionError(
          "user already clustered; reciprocity forbids reassignment");
    }
  }
  std::sort(members.begin(), members.end());
  for (size_t i = 1; i < members.size(); ++i) {
    if (members[i] == members[i - 1]) {
      return util::InvalidArgumentError("duplicate member");
    }
  }
  const ClusterId id = static_cast<ClusterId>(clusters_.size());
  for (graph::VertexId v : members) {
    if (cluster_of_[v] == kNoCluster) ++clustered_users_;
    cluster_of_[v] = id;
    active_[v] = false;
  }
  clusters_.push_back(
      ClusterInfo{std::move(members), connectivity, valid, std::nullopt});
  return id;
}

void Registry::SetRegion(ClusterId id, const geo::Rect& region) {
  NELA_CHECK_LT(id, clusters_.size());
  NELA_CHECK(!clusters_[id].region.has_value());
  NELA_CHECK(!region.empty());
  clusters_[id].region = region;
}

}  // namespace nela::cluster
