// Cluster registry: the authoritative record of which users are clustered
// together and which cloaked region each cluster uses.
//
// Location k-anonymity requires the *reciprocity property* (§IV): every user
// of a cluster maps to the same cluster. The registry enforces it by
// construction -- a user belongs to at most one cluster, membership is
// immutable once registered, and the region is stored per cluster, so
// S(v) = S(u) for all members.

#ifndef NELA_CLUSTER_REGISTRY_H_
#define NELA_CLUSTER_REGISTRY_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "geo/rect.h"
#include "graph/wpg.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace nela::cluster {

using ClusterId = uint32_t;
inline constexpr ClusterId kNoCluster = 0xffffffffu;

struct ClusterInfo {
  std::vector<graph::VertexId> members;  // sorted ascending
  // Smallest t for which the members form one t-connectivity class (0 for
  // singletons; the MEW objective the algorithms minimize).
  double connectivity = 0.0;
  // False when the cluster could not reach size k (host's whole remaining
  // component was smaller) -- anonymity is degraded and callers must know.
  bool valid = true;
  // The shared cloaked region, set after phase 2 runs once for the cluster.
  std::optional<geo::Rect> region;
};

// Thread safety: mutations (Register, SetRegion) and the scalar accessors
// are serialized on an internal mutex, so concurrent requests
// (sim::BatchDriver workers) may share a registry. Clusters live in a deque,
// which keeps info() references stable across later Register calls --
// membership is immutable once registered, so reading a committed cluster's
// members never races (the region field is published under the mutex and
// must be read through `info(id).region` only after a reuse decision made
// under external coordination, e.g. the batch driver's commit turnstile).
// active() returns a reference into live state and is only safe while no
// concurrent Register runs; speculative concurrent runs use Snapshot().
class Registry {
 public:
  // `allow_overlap` relaxes the uniqueness invariant for baseline studies:
  // a user may then appear in several clusters (ClusterOf reports the most
  // recent). The paper's kNN experiment needs this -- its requests always
  // form a fresh k-cluster, so a previously consumed requester ends up in
  // two clusters, which is exactly the reciprocity violation the paper
  // criticizes. Production cloaking must use the default (strict) mode.
  explicit Registry(uint32_t user_count, bool allow_overlap = false);

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Immutable after construction, so readable without the lock. (Before
  // the capability annotations this read cluster_of_.size() unlocked --
  // benign on every implementation we ship on, but formally a race the
  // analysis rejects; the dedicated const member makes the no-lock read
  // provably safe. See DESIGN.md, "Compile-time adversary".)
  uint32_t user_count() const { return user_count_; }
  uint32_t cluster_count() const EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return static_cast<uint32_t>(clusters_.size());
  }
  uint32_t clustered_user_count() const EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return clustered_users_;
  }

  bool IsClustered(graph::VertexId v) const {
    return ClusterOf(v) != kNoCluster;
  }

  // kNoCluster when v is not yet clustered.
  ClusterId ClusterOf(graph::VertexId v) const EXCLUDES(mu_) {
    // Bounds check against the immutable count: the pre-annotation code
    // read cluster_of_.size() here before taking the lock.
    NELA_CHECK_LT(v, user_count_);
    util::MutexLock lock(mu_);
    return cluster_of_[v];
  }

  const ClusterInfo& info(ClusterId id) const EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    NELA_CHECK_LT(id, clusters_.size());
    return clusters_[id];
  }

  // Race-free by-value read of a cluster's region, for readers that cannot
  // rely on external coordination against a concurrent SetRegion.
  std::optional<geo::Rect> RegionOf(ClusterId id) const EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    NELA_CHECK_LT(id, clusters_.size());
    return clusters_[id].region;
  }

  // Registers a new cluster. Fails when `members` is empty or any member is
  // already clustered (that would break reciprocity).
  [[nodiscard]] util::Result<ClusterId> Register(
      std::vector<graph::VertexId> members, double connectivity, bool valid)
      EXCLUDES(mu_);

  // Stores the cloaked region computed by phase 2. May be set exactly once.
  void SetRegion(ClusterId id, const geo::Rect& region) EXCLUDES(mu_);

  // active()[v] is true while v is unclustered -- the "remaining WPG" mask
  // the distributed algorithms operate on. Single-writer only; see the
  // class comment.
  const std::vector<bool>& active() const { return active_; }

  // Membership version: bumped by every Register (not by SetRegion).
  // Speculative executions validate their snapshot against it before
  // committing -- an unchanged version proves the membership state they
  // computed from is still the authoritative one.
  uint64_t version() const EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return version_;
  }

  // Deep-copies the membership state (members, connectivity, validity --
  // regions are not copied; speculation only needs membership) into a fresh
  // registry, atomically with the returned version. The copy is private to
  // the caller and safe to mutate off-thread.
  std::unique_ptr<Registry> Snapshot(uint64_t* version_out = nullptr) const
      EXCLUDES(mu_);

  // Order- and bit-exact FNV-1a fingerprint of the full registry state
  // (per cluster: member count, members, validity, then the region's four
  // coordinate bit patterns or a fixed no-region sentinel). Two registries
  // with equal digests went through the same committed history -- this is
  // the equality the determinism tests and crash-recovery replay assert.
  // Taken atomically under the registry mutex.
  uint64_t Digest() const EXCLUDES(mu_);

  // Names the registry lock so other classes can order their own locks
  // against it (durability::DurableRegistry declares ACQUIRED_BEFORE
  // relations through this accessor).
  util::Mutex& mu() const RETURN_CAPABILITY(mu_) { return mu_; }

 private:
  bool allow_overlap_;
  const uint32_t user_count_;
  mutable util::Mutex mu_;
  std::vector<ClusterId> cluster_of_ GUARDED_BY(mu_);
  // Deliberately unguarded: active() hands out a reference under the
  // documented single-writer contract above, so the member cannot carry
  // GUARDED_BY without outlawing that API. Concurrent readers use
  // Snapshot(); the batch driver's turnstile serializes the writer.
  std::vector<bool> active_;
  std::deque<ClusterInfo> clusters_ GUARDED_BY(mu_);
  uint32_t clustered_users_ GUARDED_BY(mu_) = 0;
  uint64_t version_ GUARDED_BY(mu_) = 0;
};

}  // namespace nela::cluster

#endif  // NELA_CLUSTER_REGISTRY_H_
