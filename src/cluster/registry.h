// Cluster registry: the authoritative record of which users are clustered
// together and which cloaked region each cluster uses.
//
// Location k-anonymity requires the *reciprocity property* (§IV): every user
// of a cluster maps to the same cluster. The registry enforces it by
// construction -- a user belongs to at most one cluster, membership is
// immutable once registered, and the region is stored per cluster, so
// S(v) = S(u) for all members.

#ifndef NELA_CLUSTER_REGISTRY_H_
#define NELA_CLUSTER_REGISTRY_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "geo/rect.h"
#include "graph/wpg.h"
#include "util/status.h"

namespace nela::cluster {

using ClusterId = uint32_t;
inline constexpr ClusterId kNoCluster = 0xffffffffu;

struct ClusterInfo {
  std::vector<graph::VertexId> members;  // sorted ascending
  // Smallest t for which the members form one t-connectivity class (0 for
  // singletons; the MEW objective the algorithms minimize).
  double connectivity = 0.0;
  // False when the cluster could not reach size k (host's whole remaining
  // component was smaller) -- anonymity is degraded and callers must know.
  bool valid = true;
  // The shared cloaked region, set after phase 2 runs once for the cluster.
  std::optional<geo::Rect> region;
};

class Registry {
 public:
  // `allow_overlap` relaxes the uniqueness invariant for baseline studies:
  // a user may then appear in several clusters (ClusterOf reports the most
  // recent). The paper's kNN experiment needs this -- its requests always
  // form a fresh k-cluster, so a previously consumed requester ends up in
  // two clusters, which is exactly the reciprocity violation the paper
  // criticizes. Production cloaking must use the default (strict) mode.
  explicit Registry(uint32_t user_count, bool allow_overlap = false);

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  uint32_t user_count() const {
    return static_cast<uint32_t>(cluster_of_.size());
  }
  uint32_t cluster_count() const {
    return static_cast<uint32_t>(clusters_.size());
  }
  uint32_t clustered_user_count() const { return clustered_users_; }

  bool IsClustered(graph::VertexId v) const {
    NELA_CHECK_LT(v, cluster_of_.size());
    return cluster_of_[v] != kNoCluster;
  }

  // kNoCluster when v is not yet clustered.
  ClusterId ClusterOf(graph::VertexId v) const {
    NELA_CHECK_LT(v, cluster_of_.size());
    return cluster_of_[v];
  }

  const ClusterInfo& info(ClusterId id) const {
    NELA_CHECK_LT(id, clusters_.size());
    return clusters_[id];
  }

  // Registers a new cluster. Fails when `members` is empty or any member is
  // already clustered (that would break reciprocity).
  util::Result<ClusterId> Register(std::vector<graph::VertexId> members,
                                   double connectivity, bool valid);

  // Stores the cloaked region computed by phase 2. May be set exactly once.
  void SetRegion(ClusterId id, const geo::Rect& region);

  // active()[v] is true while v is unclustered -- the "remaining WPG" mask
  // the distributed algorithms operate on.
  const std::vector<bool>& active() const { return active_; }

 private:
  bool allow_overlap_;
  std::vector<ClusterId> cluster_of_;
  std::vector<bool> active_;
  std::vector<ClusterInfo> clusters_;
  uint32_t clustered_users_ = 0;
};

}  // namespace nela::cluster

#endif  // NELA_CLUSTER_REGISTRY_H_
