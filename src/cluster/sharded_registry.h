// Shard-sliced view of the cluster registry.
//
// The sharded service keeps ONE authoritative cluster::Registry -- the
// execution substrate every clusterer, stage, and digest already speaks --
// and layers the ownership partition on top of it: each cluster belongs to
// the shard the ShardMap assigns (home shard of its minimum member), and a
// shard's *slice* is the subsequence of clusters it owns, in global commit
// order.
//
// Why a view instead of K physical registries: clustering is a global
// computation (a candidate set near a boundary reaches into neighboring
// shards' populations), and the determinism contract demands that the
// global registry evolve bit-identically whatever K is. Splitting the
// membership store physically would force cross-shard commits through a
// distributed transaction just to keep cluster ids globally ordered. The
// partition that matters for scaling -- claim coordination, WAL streams,
// admission queues -- is by ownership, and ownership is a pure function of
// (ShardMap, committed members), so the slices can always be recomputed
// from the single store. The digest identities the tests assert:
//
//   GlobalDigest()                  == Registry::Digest() (trivially)
//   ConcatenatedDigest()            == fold of the K slices merged back
//                                      into commit order; equal to the
//                                      global digest for every K, which is
//                                      the shard-count-invariance proof
//   ShardDigest(s)                  == FNV over shard s's slice (global
//                                      ids included), bit-identical across
//                                      thread counts for fixed seed and K
//
// Thread safety: all reads go through the underlying registry's locked
// accessors; the view itself holds no mutable state.

#ifndef NELA_CLUSTER_SHARDED_REGISTRY_H_
#define NELA_CLUSTER_SHARDED_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/registry.h"
#include "cluster/shard_map.h"

namespace nela::cluster {

class ShardedRegistry {
 public:
  // Builds the view over a fresh registry. `map` must outlive the view.
  ShardedRegistry(uint32_t user_count, const ShardMap* map);
  // Adopts an existing registry (recovery hands one over).
  ShardedRegistry(std::unique_ptr<Registry> registry, const ShardMap* map);

  ShardedRegistry(const ShardedRegistry&) = delete;
  ShardedRegistry& operator=(const ShardedRegistry&) = delete;

  Registry* global() { return registry_.get(); }
  const Registry& global() const { return *registry_; }
  const ShardMap& map() const { return *map_; }
  uint32_t shard_count() const { return map_->shard_count(); }

  // Owner shard of a committed cluster (home shard of its min member).
  ShardId OwnerOf(ClusterId id) const;

  // Cluster ids owned by `shard`, ascending (= global commit order).
  std::vector<ClusterId> OwnedBy(ShardId shard) const;

  // Number of committed clusters whose members span more than one shard.
  uint32_t CrossShardClusterCount() const;

  // FNV-1a over shard `shard`'s slice: for each owned cluster in global
  // commit order, the global cluster id followed by the same per-cluster
  // fields Registry::Digest() folds (member count, members, validity,
  // region bit patterns or the no-region sentinel).
  uint64_t ShardDigest(ShardId shard) const;

  // Registry::Digest() of the underlying store.
  uint64_t GlobalDigest() const { return registry_->Digest(); }

  // Recomputes the global digest by walking the K shard slices merged back
  // into global commit order -- the "concatenation" of the slices. Equals
  // GlobalDigest() iff the slices partition the registry, for any K.
  uint64_t ConcatenatedDigest() const;

 private:
  std::unique_ptr<Registry> registry_;
  const ShardMap* map_;
};

}  // namespace nela::cluster

#endif  // NELA_CLUSTER_SHARDED_REGISTRY_H_
