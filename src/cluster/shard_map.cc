#include "cluster/shard_map.h"

#include <algorithm>
#include <cmath>

namespace nela::cluster {

ShardMap::ShardMap(const data::Dataset& dataset, uint32_t shard_count)
    : shard_count_(shard_count) {
  NELA_CHECK_GE(shard_count_, 1u);
  cols_ = static_cast<uint32_t>(
      std::ceil(std::sqrt(static_cast<double>(shard_count_))));
  rows_ = (shard_count_ + cols_ - 1) / cols_;
  home_of_.reserve(dataset.size());
  users_in_.assign(shard_count_, 0);
  for (const geo::Point& p : dataset.points()) {
    const ShardId shard = ShardOfPoint(p);
    home_of_.push_back(shard);
    ++users_in_[shard];
  }
}

ShardId ShardMap::ShardOfPoint(const geo::Point& p) const {
  auto cell = [](double coordinate, uint32_t cells) {
    const double scaled = coordinate * static_cast<double>(cells);
    // Clamp instead of wrapping: a coordinate of exactly 1.0 (or slightly
    // past the square after float noise) belongs to the border cell.
    const auto index =
        static_cast<int64_t>(std::floor(scaled));
    if (index < 0) return uint32_t{0};
    if (index >= static_cast<int64_t>(cells)) return cells - 1;
    return static_cast<uint32_t>(index);
  };
  const uint32_t cx = cell(p.x, cols_);
  const uint32_t cy = cell(p.y, rows_);
  return std::min(cy * cols_ + cx, shard_count_ - 1);
}

ShardId ShardMap::OwnerOf(
    const std::vector<graph::VertexId>& members) const {
  NELA_CHECK(!members.empty());
  const graph::VertexId smallest =
      *std::min_element(members.begin(), members.end());
  return HomeShardOf(smallest);
}

bool ShardMap::CrossesShards(
    const std::vector<graph::VertexId>& members) const {
  const ShardId owner = OwnerOf(members);
  for (graph::VertexId member : members) {
    if (HomeShardOf(member) != owner) return true;
  }
  return false;
}

}  // namespace nela::cluster
