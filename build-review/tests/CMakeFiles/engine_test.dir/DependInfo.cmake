
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/engine_test.cc" "tests/CMakeFiles/engine_test.dir/engine_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/nela_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/cluster/CMakeFiles/nela_cluster.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/nela_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/spatial/CMakeFiles/nela_spatial.dir/DependInfo.cmake"
  "/root/repo/build-review/src/bounding/CMakeFiles/nela_bounding.dir/DependInfo.cmake"
  "/root/repo/build-review/src/data/CMakeFiles/nela_data.dir/DependInfo.cmake"
  "/root/repo/build-review/src/geo/CMakeFiles/nela_geo.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/nela_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/nela_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
