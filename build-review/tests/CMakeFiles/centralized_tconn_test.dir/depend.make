# Empty dependencies file for centralized_tconn_test.
# This may be replaced when dependencies are built.
