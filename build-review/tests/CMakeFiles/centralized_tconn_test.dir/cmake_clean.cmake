file(REMOVE_RECURSE
  "CMakeFiles/centralized_tconn_test.dir/centralized_tconn_test.cc.o"
  "CMakeFiles/centralized_tconn_test.dir/centralized_tconn_test.cc.o.d"
  "centralized_tconn_test"
  "centralized_tconn_test.pdb"
  "centralized_tconn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centralized_tconn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
