file(REMOVE_RECURSE
  "CMakeFiles/krnn_audit_test.dir/krnn_audit_test.cc.o"
  "CMakeFiles/krnn_audit_test.dir/krnn_audit_test.cc.o.d"
  "krnn_audit_test"
  "krnn_audit_test.pdb"
  "krnn_audit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/krnn_audit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
