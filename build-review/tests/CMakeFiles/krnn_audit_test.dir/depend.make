# Empty dependencies file for krnn_audit_test.
# This may be replaced when dependencies are built.
