file(REMOVE_RECURSE
  "CMakeFiles/distributed_tconn_test.dir/distributed_tconn_test.cc.o"
  "CMakeFiles/distributed_tconn_test.dir/distributed_tconn_test.cc.o.d"
  "distributed_tconn_test"
  "distributed_tconn_test.pdb"
  "distributed_tconn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_tconn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
