# Empty compiler generated dependencies file for distributed_tconn_test.
# This may be replaced when dependencies are built.
