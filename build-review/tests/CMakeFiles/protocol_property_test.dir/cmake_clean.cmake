file(REMOVE_RECURSE
  "CMakeFiles/protocol_property_test.dir/protocol_property_test.cc.o"
  "CMakeFiles/protocol_property_test.dir/protocol_property_test.cc.o.d"
  "protocol_property_test"
  "protocol_property_test.pdb"
  "protocol_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
