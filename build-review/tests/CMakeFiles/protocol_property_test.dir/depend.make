# Empty dependencies file for protocol_property_test.
# This may be replaced when dependencies are built.
