file(REMOVE_RECURSE
  "CMakeFiles/audit_observer_test.dir/audit_observer_test.cc.o"
  "CMakeFiles/audit_observer_test.dir/audit_observer_test.cc.o.d"
  "audit_observer_test"
  "audit_observer_test.pdb"
  "audit_observer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audit_observer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
