# Empty dependencies file for audit_observer_test.
# This may be replaced when dependencies are built.
