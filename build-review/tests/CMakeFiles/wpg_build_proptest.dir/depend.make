# Empty dependencies file for wpg_build_proptest.
# This may be replaced when dependencies are built.
