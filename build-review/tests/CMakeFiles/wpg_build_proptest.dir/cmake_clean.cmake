file(REMOVE_RECURSE
  "CMakeFiles/wpg_build_proptest.dir/wpg_build_proptest.cc.o"
  "CMakeFiles/wpg_build_proptest.dir/wpg_build_proptest.cc.o.d"
  "wpg_build_proptest"
  "wpg_build_proptest.pdb"
  "wpg_build_proptest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wpg_build_proptest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
