file(REMOVE_RECURSE
  "CMakeFiles/batch_driver_test.dir/batch_driver_test.cc.o"
  "CMakeFiles/batch_driver_test.dir/batch_driver_test.cc.o.d"
  "batch_driver_test"
  "batch_driver_test.pdb"
  "batch_driver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_driver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
