file(REMOVE_RECURSE
  "CMakeFiles/knn_clustering_test.dir/knn_clustering_test.cc.o"
  "CMakeFiles/knn_clustering_test.dir/knn_clustering_test.cc.o.d"
  "knn_clustering_test"
  "knn_clustering_test.pdb"
  "knn_clustering_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knn_clustering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
