# Empty dependencies file for knn_clustering_test.
# This may be replaced when dependencies are built.
