# Empty compiler generated dependencies file for bounding_math_test.
# This may be replaced when dependencies are built.
