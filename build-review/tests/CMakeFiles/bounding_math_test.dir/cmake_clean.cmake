file(REMOVE_RECURSE
  "CMakeFiles/bounding_math_test.dir/bounding_math_test.cc.o"
  "CMakeFiles/bounding_math_test.dir/bounding_math_test.cc.o.d"
  "bounding_math_test"
  "bounding_math_test.pdb"
  "bounding_math_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounding_math_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
