# Empty compiler generated dependencies file for lbs_test.
# This may be replaced when dependencies are built.
