file(REMOVE_RECURSE
  "CMakeFiles/lbs_test.dir/lbs_test.cc.o"
  "CMakeFiles/lbs_test.dir/lbs_test.cc.o.d"
  "lbs_test"
  "lbs_test.pdb"
  "lbs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
