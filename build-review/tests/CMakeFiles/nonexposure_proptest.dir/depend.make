# Empty dependencies file for nonexposure_proptest.
# This may be replaced when dependencies are built.
