file(REMOVE_RECURSE
  "CMakeFiles/nonexposure_proptest.dir/nonexposure_proptest.cc.o"
  "CMakeFiles/nonexposure_proptest.dir/nonexposure_proptest.cc.o.d"
  "nonexposure_proptest"
  "nonexposure_proptest.pdb"
  "nonexposure_proptest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonexposure_proptest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
