file(REMOVE_RECURSE
  "CMakeFiles/connectivity_test.dir/connectivity_test.cc.o"
  "CMakeFiles/connectivity_test.dir/connectivity_test.cc.o.d"
  "connectivity_test"
  "connectivity_test.pdb"
  "connectivity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/connectivity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
