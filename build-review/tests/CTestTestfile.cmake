# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/util_test[1]_include.cmake")
include("/root/repo/build-review/tests/thread_pool_test[1]_include.cmake")
include("/root/repo/build-review/tests/geo_test[1]_include.cmake")
include("/root/repo/build-review/tests/data_test[1]_include.cmake")
include("/root/repo/build-review/tests/spatial_test[1]_include.cmake")
include("/root/repo/build-review/tests/graph_test[1]_include.cmake")
include("/root/repo/build-review/tests/hierarchy_test[1]_include.cmake")
include("/root/repo/build-review/tests/connectivity_test[1]_include.cmake")
include("/root/repo/build-review/tests/registry_test[1]_include.cmake")
include("/root/repo/build-review/tests/centralized_tconn_test[1]_include.cmake")
include("/root/repo/build-review/tests/distributed_tconn_test[1]_include.cmake")
include("/root/repo/build-review/tests/knn_clustering_test[1]_include.cmake")
include("/root/repo/build-review/tests/network_test[1]_include.cmake")
include("/root/repo/build-review/tests/bounding_math_test[1]_include.cmake")
include("/root/repo/build-review/tests/audit_observer_test[1]_include.cmake")
include("/root/repo/build-review/tests/protocol_test[1]_include.cmake")
include("/root/repo/build-review/tests/lbs_test[1]_include.cmake")
include("/root/repo/build-review/tests/engine_test[1]_include.cmake")
include("/root/repo/build-review/tests/sim_test[1]_include.cmake")
include("/root/repo/build-review/tests/road_network_test[1]_include.cmake")
include("/root/repo/build-review/tests/protocol_property_test[1]_include.cmake")
include("/root/repo/build-review/tests/concurrency_test[1]_include.cmake")
include("/root/repo/build-review/tests/batch_driver_test[1]_include.cmake")
include("/root/repo/build-review/tests/krnn_audit_test[1]_include.cmake")
include("/root/repo/build-review/tests/chaos_test[1]_include.cmake")
include("/root/repo/build-review/tests/nonexposure_proptest[1]_include.cmake")
include("/root/repo/build-review/tests/wpg_build_proptest[1]_include.cmake")
