file(REMOVE_RECURSE
  "CMakeFiles/nearest_poi_service.dir/nearest_poi_service.cpp.o"
  "CMakeFiles/nearest_poi_service.dir/nearest_poi_service.cpp.o.d"
  "nearest_poi_service"
  "nearest_poi_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nearest_poi_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
