# Empty dependencies file for nearest_poi_service.
# This may be replaced when dependencies are built.
