# Empty dependencies file for anonymizer_comparison.
# This may be replaced when dependencies are built.
