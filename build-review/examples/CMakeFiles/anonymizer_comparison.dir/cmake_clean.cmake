file(REMOVE_RECURSE
  "CMakeFiles/anonymizer_comparison.dir/anonymizer_comparison.cpp.o"
  "CMakeFiles/anonymizer_comparison.dir/anonymizer_comparison.cpp.o.d"
  "anonymizer_comparison"
  "anonymizer_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anonymizer_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
