file(REMOVE_RECURSE
  "../bench/bench_fig11_k"
  "../bench/bench_fig11_k.pdb"
  "CMakeFiles/bench_fig11_k.dir/bench_fig11_k.cc.o"
  "CMakeFiles/bench_fig11_k.dir/bench_fig11_k.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
