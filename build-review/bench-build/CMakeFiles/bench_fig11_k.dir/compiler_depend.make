# Empty compiler generated dependencies file for bench_fig11_k.
# This may be replaced when dependencies are built.
