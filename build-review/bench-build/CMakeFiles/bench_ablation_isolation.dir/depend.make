# Empty dependencies file for bench_ablation_isolation.
# This may be replaced when dependencies are built.
