file(REMOVE_RECURSE
  "../bench/bench_ablation_isolation"
  "../bench/bench_ablation_isolation.pdb"
  "CMakeFiles/bench_ablation_isolation.dir/bench_ablation_isolation.cc.o"
  "CMakeFiles/bench_ablation_isolation.dir/bench_ablation_isolation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
