# Empty compiler generated dependencies file for bench_ablation_nbound_dp.
# This may be replaced when dependencies are built.
