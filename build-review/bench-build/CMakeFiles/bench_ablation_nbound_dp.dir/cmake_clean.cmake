file(REMOVE_RECURSE
  "../bench/bench_ablation_nbound_dp"
  "../bench/bench_ablation_nbound_dp.pdb"
  "CMakeFiles/bench_ablation_nbound_dp.dir/bench_ablation_nbound_dp.cc.o"
  "CMakeFiles/bench_ablation_nbound_dp.dir/bench_ablation_nbound_dp.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nbound_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
