file(REMOVE_RECURSE
  "../bench/bench_fig9_degree"
  "../bench/bench_fig9_degree.pdb"
  "CMakeFiles/bench_fig9_degree.dir/bench_fig9_degree.cc.o"
  "CMakeFiles/bench_fig9_degree.dir/bench_fig9_degree.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
