# Empty dependencies file for bench_fig9_degree.
# This may be replaced when dependencies are built.
