# Empty dependencies file for bench_fig12_requests.
# This may be replaced when dependencies are built.
