file(REMOVE_RECURSE
  "../bench/bench_fig12_requests"
  "../bench/bench_fig12_requests.pdb"
  "CMakeFiles/bench_fig12_requests.dir/bench_fig12_requests.cc.o"
  "CMakeFiles/bench_fig12_requests.dir/bench_fig12_requests.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_requests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
