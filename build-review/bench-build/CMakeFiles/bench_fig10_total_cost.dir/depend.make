# Empty dependencies file for bench_fig10_total_cost.
# This may be replaced when dependencies are built.
