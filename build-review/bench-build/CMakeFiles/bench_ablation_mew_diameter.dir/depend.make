# Empty dependencies file for bench_ablation_mew_diameter.
# This may be replaced when dependencies are built.
