file(REMOVE_RECURSE
  "../bench/bench_ablation_mew_diameter"
  "../bench/bench_ablation_mew_diameter.pdb"
  "CMakeFiles/bench_ablation_mew_diameter.dir/bench_ablation_mew_diameter.cc.o"
  "CMakeFiles/bench_ablation_mew_diameter.dir/bench_ablation_mew_diameter.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mew_diameter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
