file(REMOVE_RECURSE
  "../bench/bench_ablation_privacy_loss"
  "../bench/bench_ablation_privacy_loss.pdb"
  "CMakeFiles/bench_ablation_privacy_loss.dir/bench_ablation_privacy_loss.cc.o"
  "CMakeFiles/bench_ablation_privacy_loss.dir/bench_ablation_privacy_loss.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_privacy_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
