# Empty dependencies file for bench_batch_throughput.
# This may be replaced when dependencies are built.
