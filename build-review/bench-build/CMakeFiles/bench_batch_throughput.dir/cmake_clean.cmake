file(REMOVE_RECURSE
  "../bench/bench_batch_throughput"
  "../bench/bench_batch_throughput.pdb"
  "CMakeFiles/bench_batch_throughput.dir/bench_batch_throughput.cc.o"
  "CMakeFiles/bench_batch_throughput.dir/bench_batch_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_batch_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
