file(REMOVE_RECURSE
  "../bench/bench_fig13_bounding"
  "../bench/bench_fig13_bounding.pdb"
  "CMakeFiles/bench_fig13_bounding.dir/bench_fig13_bounding.cc.o"
  "CMakeFiles/bench_fig13_bounding.dir/bench_fig13_bounding.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_bounding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
