file(REMOVE_RECURSE
  "../bench/bench_fault_tolerance"
  "../bench/bench_fault_tolerance.pdb"
  "CMakeFiles/bench_fault_tolerance.dir/bench_fault_tolerance.cc.o"
  "CMakeFiles/bench_fault_tolerance.dir/bench_fault_tolerance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fault_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
