# Empty dependencies file for bench_ablation_knn_expansion.
# This may be replaced when dependencies are built.
