file(REMOVE_RECURSE
  "../bench/bench_ablation_knn_expansion"
  "../bench/bench_ablation_knn_expansion.pdb"
  "CMakeFiles/bench_ablation_knn_expansion.dir/bench_ablation_knn_expansion.cc.o"
  "CMakeFiles/bench_ablation_knn_expansion.dir/bench_ablation_knn_expansion.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_knn_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
