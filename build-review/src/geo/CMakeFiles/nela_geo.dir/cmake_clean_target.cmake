file(REMOVE_RECURSE
  "libnela_geo.a"
)
