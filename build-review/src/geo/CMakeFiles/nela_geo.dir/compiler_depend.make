# Empty compiler generated dependencies file for nela_geo.
# This may be replaced when dependencies are built.
