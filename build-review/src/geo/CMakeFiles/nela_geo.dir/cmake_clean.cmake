file(REMOVE_RECURSE
  "CMakeFiles/nela_geo.dir/rect.cc.o"
  "CMakeFiles/nela_geo.dir/rect.cc.o.d"
  "libnela_geo.a"
  "libnela_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nela_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
