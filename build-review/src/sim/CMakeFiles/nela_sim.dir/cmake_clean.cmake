file(REMOVE_RECURSE
  "CMakeFiles/nela_sim.dir/batch_driver.cc.o"
  "CMakeFiles/nela_sim.dir/batch_driver.cc.o.d"
  "CMakeFiles/nela_sim.dir/bounding_experiment.cc.o"
  "CMakeFiles/nela_sim.dir/bounding_experiment.cc.o.d"
  "CMakeFiles/nela_sim.dir/chaos_experiment.cc.o"
  "CMakeFiles/nela_sim.dir/chaos_experiment.cc.o.d"
  "CMakeFiles/nela_sim.dir/clustering_experiment.cc.o"
  "CMakeFiles/nela_sim.dir/clustering_experiment.cc.o.d"
  "CMakeFiles/nela_sim.dir/scenario.cc.o"
  "CMakeFiles/nela_sim.dir/scenario.cc.o.d"
  "CMakeFiles/nela_sim.dir/workload.cc.o"
  "CMakeFiles/nela_sim.dir/workload.cc.o.d"
  "libnela_sim.a"
  "libnela_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nela_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
