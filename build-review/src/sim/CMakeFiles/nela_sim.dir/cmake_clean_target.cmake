file(REMOVE_RECURSE
  "libnela_sim.a"
)
