# Empty dependencies file for nela_sim.
# This may be replaced when dependencies are built.
