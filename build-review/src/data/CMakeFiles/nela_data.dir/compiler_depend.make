# Empty compiler generated dependencies file for nela_data.
# This may be replaced when dependencies are built.
