file(REMOVE_RECURSE
  "CMakeFiles/nela_data.dir/dataset.cc.o"
  "CMakeFiles/nela_data.dir/dataset.cc.o.d"
  "CMakeFiles/nela_data.dir/dataset_io.cc.o"
  "CMakeFiles/nela_data.dir/dataset_io.cc.o.d"
  "CMakeFiles/nela_data.dir/generators.cc.o"
  "CMakeFiles/nela_data.dir/generators.cc.o.d"
  "libnela_data.a"
  "libnela_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nela_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
