file(REMOVE_RECURSE
  "libnela_data.a"
)
