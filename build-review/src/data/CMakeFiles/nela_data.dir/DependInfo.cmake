
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/nela_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/nela_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/dataset_io.cc" "src/data/CMakeFiles/nela_data.dir/dataset_io.cc.o" "gcc" "src/data/CMakeFiles/nela_data.dir/dataset_io.cc.o.d"
  "/root/repo/src/data/generators.cc" "src/data/CMakeFiles/nela_data.dir/generators.cc.o" "gcc" "src/data/CMakeFiles/nela_data.dir/generators.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/geo/CMakeFiles/nela_geo.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/nela_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
