file(REMOVE_RECURSE
  "libnela_cluster.a"
)
