# Empty compiler generated dependencies file for nela_cluster.
# This may be replaced when dependencies are built.
