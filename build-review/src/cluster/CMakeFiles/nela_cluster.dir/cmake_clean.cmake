file(REMOVE_RECURSE
  "CMakeFiles/nela_cluster.dir/centralized_tconn.cc.o"
  "CMakeFiles/nela_cluster.dir/centralized_tconn.cc.o.d"
  "CMakeFiles/nela_cluster.dir/concurrency.cc.o"
  "CMakeFiles/nela_cluster.dir/concurrency.cc.o.d"
  "CMakeFiles/nela_cluster.dir/distributed_tconn.cc.o"
  "CMakeFiles/nela_cluster.dir/distributed_tconn.cc.o.d"
  "CMakeFiles/nela_cluster.dir/knn_clustering.cc.o"
  "CMakeFiles/nela_cluster.dir/knn_clustering.cc.o.d"
  "CMakeFiles/nela_cluster.dir/registry.cc.o"
  "CMakeFiles/nela_cluster.dir/registry.cc.o.d"
  "libnela_cluster.a"
  "libnela_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nela_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
