file(REMOVE_RECURSE
  "CMakeFiles/nela_bounding.dir/cost_model.cc.o"
  "CMakeFiles/nela_bounding.dir/cost_model.cc.o.d"
  "CMakeFiles/nela_bounding.dir/distribution.cc.o"
  "CMakeFiles/nela_bounding.dir/distribution.cc.o.d"
  "CMakeFiles/nela_bounding.dir/increment_policy.cc.o"
  "CMakeFiles/nela_bounding.dir/increment_policy.cc.o.d"
  "CMakeFiles/nela_bounding.dir/nbound.cc.o"
  "CMakeFiles/nela_bounding.dir/nbound.cc.o.d"
  "CMakeFiles/nela_bounding.dir/privacy_loss.cc.o"
  "CMakeFiles/nela_bounding.dir/privacy_loss.cc.o.d"
  "CMakeFiles/nela_bounding.dir/protocol.cc.o"
  "CMakeFiles/nela_bounding.dir/protocol.cc.o.d"
  "CMakeFiles/nela_bounding.dir/secret.cc.o"
  "CMakeFiles/nela_bounding.dir/secret.cc.o.d"
  "CMakeFiles/nela_bounding.dir/unary.cc.o"
  "CMakeFiles/nela_bounding.dir/unary.cc.o.d"
  "libnela_bounding.a"
  "libnela_bounding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nela_bounding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
