# Empty compiler generated dependencies file for nela_bounding.
# This may be replaced when dependencies are built.
