file(REMOVE_RECURSE
  "libnela_bounding.a"
)
