
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bounding/cost_model.cc" "src/bounding/CMakeFiles/nela_bounding.dir/cost_model.cc.o" "gcc" "src/bounding/CMakeFiles/nela_bounding.dir/cost_model.cc.o.d"
  "/root/repo/src/bounding/distribution.cc" "src/bounding/CMakeFiles/nela_bounding.dir/distribution.cc.o" "gcc" "src/bounding/CMakeFiles/nela_bounding.dir/distribution.cc.o.d"
  "/root/repo/src/bounding/increment_policy.cc" "src/bounding/CMakeFiles/nela_bounding.dir/increment_policy.cc.o" "gcc" "src/bounding/CMakeFiles/nela_bounding.dir/increment_policy.cc.o.d"
  "/root/repo/src/bounding/nbound.cc" "src/bounding/CMakeFiles/nela_bounding.dir/nbound.cc.o" "gcc" "src/bounding/CMakeFiles/nela_bounding.dir/nbound.cc.o.d"
  "/root/repo/src/bounding/privacy_loss.cc" "src/bounding/CMakeFiles/nela_bounding.dir/privacy_loss.cc.o" "gcc" "src/bounding/CMakeFiles/nela_bounding.dir/privacy_loss.cc.o.d"
  "/root/repo/src/bounding/protocol.cc" "src/bounding/CMakeFiles/nela_bounding.dir/protocol.cc.o" "gcc" "src/bounding/CMakeFiles/nela_bounding.dir/protocol.cc.o.d"
  "/root/repo/src/bounding/secret.cc" "src/bounding/CMakeFiles/nela_bounding.dir/secret.cc.o" "gcc" "src/bounding/CMakeFiles/nela_bounding.dir/secret.cc.o.d"
  "/root/repo/src/bounding/unary.cc" "src/bounding/CMakeFiles/nela_bounding.dir/unary.cc.o" "gcc" "src/bounding/CMakeFiles/nela_bounding.dir/unary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/geo/CMakeFiles/nela_geo.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/nela_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/nela_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
