file(REMOVE_RECURSE
  "libnela_audit.a"
)
