file(REMOVE_RECURSE
  "CMakeFiles/nela_audit.dir/knowledge.cc.o"
  "CMakeFiles/nela_audit.dir/knowledge.cc.o.d"
  "CMakeFiles/nela_audit.dir/observer.cc.o"
  "CMakeFiles/nela_audit.dir/observer.cc.o.d"
  "CMakeFiles/nela_audit.dir/taint.cc.o"
  "CMakeFiles/nela_audit.dir/taint.cc.o.d"
  "libnela_audit.a"
  "libnela_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nela_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
