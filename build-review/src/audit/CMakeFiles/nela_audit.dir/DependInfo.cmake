
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/audit/knowledge.cc" "src/audit/CMakeFiles/nela_audit.dir/knowledge.cc.o" "gcc" "src/audit/CMakeFiles/nela_audit.dir/knowledge.cc.o.d"
  "/root/repo/src/audit/observer.cc" "src/audit/CMakeFiles/nela_audit.dir/observer.cc.o" "gcc" "src/audit/CMakeFiles/nela_audit.dir/observer.cc.o.d"
  "/root/repo/src/audit/taint.cc" "src/audit/CMakeFiles/nela_audit.dir/taint.cc.o" "gcc" "src/audit/CMakeFiles/nela_audit.dir/taint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/net/CMakeFiles/nela_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/geo/CMakeFiles/nela_geo.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/nela_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
