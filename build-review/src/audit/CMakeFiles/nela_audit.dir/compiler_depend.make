# Empty compiler generated dependencies file for nela_audit.
# This may be replaced when dependencies are built.
