file(REMOVE_RECURSE
  "CMakeFiles/nela_core.dir/anonymity_audit.cc.o"
  "CMakeFiles/nela_core.dir/anonymity_audit.cc.o.d"
  "CMakeFiles/nela_core.dir/cloaking_engine.cc.o"
  "CMakeFiles/nela_core.dir/cloaking_engine.cc.o.d"
  "CMakeFiles/nela_core.dir/pipeline.cc.o"
  "CMakeFiles/nela_core.dir/pipeline.cc.o.d"
  "CMakeFiles/nela_core.dir/policy_factory.cc.o"
  "CMakeFiles/nela_core.dir/policy_factory.cc.o.d"
  "CMakeFiles/nela_core.dir/request_context.cc.o"
  "CMakeFiles/nela_core.dir/request_context.cc.o.d"
  "CMakeFiles/nela_core.dir/stages.cc.o"
  "CMakeFiles/nela_core.dir/stages.cc.o.d"
  "libnela_core.a"
  "libnela_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nela_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
