# Empty dependencies file for nela_core.
# This may be replaced when dependencies are built.
