
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/anonymity_audit.cc" "src/core/CMakeFiles/nela_core.dir/anonymity_audit.cc.o" "gcc" "src/core/CMakeFiles/nela_core.dir/anonymity_audit.cc.o.d"
  "/root/repo/src/core/cloaking_engine.cc" "src/core/CMakeFiles/nela_core.dir/cloaking_engine.cc.o" "gcc" "src/core/CMakeFiles/nela_core.dir/cloaking_engine.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/nela_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/nela_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/policy_factory.cc" "src/core/CMakeFiles/nela_core.dir/policy_factory.cc.o" "gcc" "src/core/CMakeFiles/nela_core.dir/policy_factory.cc.o.d"
  "/root/repo/src/core/request_context.cc" "src/core/CMakeFiles/nela_core.dir/request_context.cc.o" "gcc" "src/core/CMakeFiles/nela_core.dir/request_context.cc.o.d"
  "/root/repo/src/core/stages.cc" "src/core/CMakeFiles/nela_core.dir/stages.cc.o" "gcc" "src/core/CMakeFiles/nela_core.dir/stages.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/cluster/CMakeFiles/nela_cluster.dir/DependInfo.cmake"
  "/root/repo/build-review/src/bounding/CMakeFiles/nela_bounding.dir/DependInfo.cmake"
  "/root/repo/build-review/src/data/CMakeFiles/nela_data.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/nela_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/nela_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/nela_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/spatial/CMakeFiles/nela_spatial.dir/DependInfo.cmake"
  "/root/repo/build-review/src/geo/CMakeFiles/nela_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
