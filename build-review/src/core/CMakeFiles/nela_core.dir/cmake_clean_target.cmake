file(REMOVE_RECURSE
  "libnela_core.a"
)
