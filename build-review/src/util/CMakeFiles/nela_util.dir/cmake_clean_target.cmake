file(REMOVE_RECURSE
  "libnela_util.a"
)
