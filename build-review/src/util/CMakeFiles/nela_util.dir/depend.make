# Empty dependencies file for nela_util.
# This may be replaced when dependencies are built.
