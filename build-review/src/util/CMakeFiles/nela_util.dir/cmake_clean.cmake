file(REMOVE_RECURSE
  "CMakeFiles/nela_util.dir/csv.cc.o"
  "CMakeFiles/nela_util.dir/csv.cc.o.d"
  "CMakeFiles/nela_util.dir/flags.cc.o"
  "CMakeFiles/nela_util.dir/flags.cc.o.d"
  "CMakeFiles/nela_util.dir/proptest.cc.o"
  "CMakeFiles/nela_util.dir/proptest.cc.o.d"
  "CMakeFiles/nela_util.dir/rng.cc.o"
  "CMakeFiles/nela_util.dir/rng.cc.o.d"
  "CMakeFiles/nela_util.dir/stats.cc.o"
  "CMakeFiles/nela_util.dir/stats.cc.o.d"
  "CMakeFiles/nela_util.dir/status.cc.o"
  "CMakeFiles/nela_util.dir/status.cc.o.d"
  "CMakeFiles/nela_util.dir/thread_pool.cc.o"
  "CMakeFiles/nela_util.dir/thread_pool.cc.o.d"
  "libnela_util.a"
  "libnela_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nela_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
