# Empty dependencies file for nela_spatial.
# This may be replaced when dependencies are built.
