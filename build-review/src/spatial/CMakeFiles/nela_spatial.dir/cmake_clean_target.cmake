file(REMOVE_RECURSE
  "libnela_spatial.a"
)
