file(REMOVE_RECURSE
  "CMakeFiles/nela_spatial.dir/grid_index.cc.o"
  "CMakeFiles/nela_spatial.dir/grid_index.cc.o.d"
  "libnela_spatial.a"
  "libnela_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nela_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
