
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/connectivity.cc" "src/graph/CMakeFiles/nela_graph.dir/connectivity.cc.o" "gcc" "src/graph/CMakeFiles/nela_graph.dir/connectivity.cc.o.d"
  "/root/repo/src/graph/hierarchy.cc" "src/graph/CMakeFiles/nela_graph.dir/hierarchy.cc.o" "gcc" "src/graph/CMakeFiles/nela_graph.dir/hierarchy.cc.o.d"
  "/root/repo/src/graph/metrics.cc" "src/graph/CMakeFiles/nela_graph.dir/metrics.cc.o" "gcc" "src/graph/CMakeFiles/nela_graph.dir/metrics.cc.o.d"
  "/root/repo/src/graph/union_find.cc" "src/graph/CMakeFiles/nela_graph.dir/union_find.cc.o" "gcc" "src/graph/CMakeFiles/nela_graph.dir/union_find.cc.o.d"
  "/root/repo/src/graph/wpg.cc" "src/graph/CMakeFiles/nela_graph.dir/wpg.cc.o" "gcc" "src/graph/CMakeFiles/nela_graph.dir/wpg.cc.o.d"
  "/root/repo/src/graph/wpg_builder.cc" "src/graph/CMakeFiles/nela_graph.dir/wpg_builder.cc.o" "gcc" "src/graph/CMakeFiles/nela_graph.dir/wpg_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/data/CMakeFiles/nela_data.dir/DependInfo.cmake"
  "/root/repo/build-review/src/spatial/CMakeFiles/nela_spatial.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/nela_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/geo/CMakeFiles/nela_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
