# Empty compiler generated dependencies file for nela_graph.
# This may be replaced when dependencies are built.
