file(REMOVE_RECURSE
  "CMakeFiles/nela_graph.dir/connectivity.cc.o"
  "CMakeFiles/nela_graph.dir/connectivity.cc.o.d"
  "CMakeFiles/nela_graph.dir/hierarchy.cc.o"
  "CMakeFiles/nela_graph.dir/hierarchy.cc.o.d"
  "CMakeFiles/nela_graph.dir/metrics.cc.o"
  "CMakeFiles/nela_graph.dir/metrics.cc.o.d"
  "CMakeFiles/nela_graph.dir/union_find.cc.o"
  "CMakeFiles/nela_graph.dir/union_find.cc.o.d"
  "CMakeFiles/nela_graph.dir/wpg.cc.o"
  "CMakeFiles/nela_graph.dir/wpg.cc.o.d"
  "CMakeFiles/nela_graph.dir/wpg_builder.cc.o"
  "CMakeFiles/nela_graph.dir/wpg_builder.cc.o.d"
  "libnela_graph.a"
  "libnela_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nela_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
