file(REMOVE_RECURSE
  "libnela_graph.a"
)
