file(REMOVE_RECURSE
  "libnela_net.a"
)
