file(REMOVE_RECURSE
  "CMakeFiles/nela_net.dir/network.cc.o"
  "CMakeFiles/nela_net.dir/network.cc.o.d"
  "CMakeFiles/nela_net.dir/retry.cc.o"
  "CMakeFiles/nela_net.dir/retry.cc.o.d"
  "libnela_net.a"
  "libnela_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nela_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
