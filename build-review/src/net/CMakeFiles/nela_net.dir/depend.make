# Empty dependencies file for nela_net.
# This may be replaced when dependencies are built.
