file(REMOVE_RECURSE
  "CMakeFiles/nela_lbs.dir/krnn.cc.o"
  "CMakeFiles/nela_lbs.dir/krnn.cc.o.d"
  "CMakeFiles/nela_lbs.dir/poi_database.cc.o"
  "CMakeFiles/nela_lbs.dir/poi_database.cc.o.d"
  "CMakeFiles/nela_lbs.dir/server.cc.o"
  "CMakeFiles/nela_lbs.dir/server.cc.o.d"
  "libnela_lbs.a"
  "libnela_lbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nela_lbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
