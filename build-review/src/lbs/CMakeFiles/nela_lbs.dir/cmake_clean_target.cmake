file(REMOVE_RECURSE
  "libnela_lbs.a"
)
