# Empty compiler generated dependencies file for nela_lbs.
# This may be replaced when dependencies are built.
