// Lexer-backed non-exposure taint pass (the `coordinate-taint` lint rule).
//
// Compile-time counterpart of the runtime audit::AdversaryObserver: the
// observer proves at run time that no raw coordinate crossed the simulated
// network unaccounted; this pass proves the same property over the source,
// per function, before anything runs.
//
// Model (intraprocedural, per translation-unit):
//
//   Sources -- values that carry a user coordinate:
//     * locals/parameters of type geo::Point (any declaration whose type
//       spells `Point`, including vector<geo::Point> etc.),
//     * bounding::PrivateScalar values (the protocol's secret wrapper),
//     * `.x` / `.y` (or any member) of a tainted value,
//     * results of same-file helpers that return geo::Point (a file-level
//       producer table built in a first pass),
//     * anything assigned or initialized from a tainted expression --
//       including noised intermediates: a perturbed coordinate is still a
//       coordinate until a *tag* declares what it is.
//
//   Sinks -- where a value leaves the node:
//     * arguments of net::Network::Send / net::SendWithRetry calls,
//     * values passed to payload.Add(tag, subject, value),
//     * field writes on a local net::Message (message.bytes = ...).
//
//   Sanctioned flows -- the only taint that may reach a sink:
//     * payload.Add with a literal net::FieldTag that types the exposure
//       (kNoisedCoordinate, kCandidateLocation, kCloakedRegion, ...): the
//       tag IS the declaration, and the runtime observer audits it;
//     * payload.Add(net::FieldTag::kRawCoordinate, ...) on a line carrying
//       (or directly below) a `nela-lint: declare-exposure(channel)`
//       comment -- the audited escape hatch for the declared raw-upload
//       channels (the OPT comparator, the grid cloak's trusted upload);
//     * a declared message-field write or positional argument -- the same
//       declare-exposure comment covers sinks no FieldTag can express,
//       like the LBS reply-size side channel (reply bytes track the
//       candidate count near the probe).
//
//   Everything else is a finding: a coordinate smuggled through the
//   untyped kControl field, or routed through a non-literal tag the
//   observer cannot attribute. declare-exposure deliberately does NOT
//   sanction those two -- their fix is spelling a proper tag, not
//   declaring a channel.
//
// The pass is deliberately flow-insensitive within a function (no branch
// analysis) and conservative: once tainted, a name stays tainted for the
// rest of the function. Lambdas share the enclosing function's taint map,
// which matches how captures behave.

#ifndef NELA_TOOLS_NELA_LINT_TAINT_H_
#define NELA_TOOLS_NELA_LINT_TAINT_H_

#include <string>
#include <vector>

namespace nela::lint {

struct TaintFinding {
  int line = 0;  // 1-based
  std::string message;
};

// Runs the coordinate-taint pass over one file's contents. Scope filtering
// (library-only, net-internal exempt) and `nela-lint: allow(...)`
// suppression are the caller's job (lint.cc routes findings through the
// shared Report path); `declare-exposure` is honored here because it is
// taint policy, not suppression.
std::vector<TaintFinding> RunCoordinateTaint(const std::string& contents);

}  // namespace nela::lint

#endif  // NELA_TOOLS_NELA_LINT_TAINT_H_
