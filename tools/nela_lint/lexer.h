// Minimal C++ lexer for the nela_lint taint pass.
//
// The line-oriented SplitSource pass in lint.cc is enough for the
// identifier-grep rules, but the coordinate-taint pass needs real tokens:
// it must see `geo::Point` as three tokens, follow an identifier through an
// initializer, and split argument lists -- none of which survive a string
// scan of raw lines. This lexer produces just enough structure for that:
// identifiers, preprocessing numbers, string/char literals, comments, and
// punctuation, each stamped with the physical line it started on.
//
// Deliberately NOT a conforming phase-3 lexer. The corners that matter for
// linting real sources are handled -- raw strings (so a `payload.Add(` in
// an R"(...)" never looks like code), non-nested block comments, line
// continuations, digit separators, digraphs, and the `<::` maximal-munch
// special case -- while preprocessing semantics (macro expansion, #if
// arms) are out of scope: the pass lints the file the human reads, not the
// translation unit the compiler sees.

#ifndef NELA_TOOLS_NELA_LINT_LEXER_H_
#define NELA_TOOLS_NELA_LINT_LEXER_H_

#include <string>
#include <vector>

namespace nela::lint {

enum class TokenKind {
  kIdentifier,   // keywords included; the taint pass tells them apart
  kNumber,       // pp-number: 1, 0xFF, 1'000'000, 1.5e-3, .25
  kString,       // text = contents without quotes (escapes kept verbatim)
  kCharLiteral,  // text = contents without quotes
  kComment,      // text = contents without the // or /* */ markers
  kPunct,        // text = the operator; digraphs normalized ({ } [ ] # ##)
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  // 1-based physical source line of the token's first character (after
  // line-continuation splicing, a token spelled across a backslash-newline
  // reports the line it started on).
  int line = 1;
};

// Tokenizes `text`. Never fails: malformed input (unterminated literals or
// comments) lexes to a best-effort token ending at end-of-file.
std::vector<Token> Lex(const std::string& text);

}  // namespace nela::lint

#endif  // NELA_TOOLS_NELA_LINT_LEXER_H_
