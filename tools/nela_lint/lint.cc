#include "nela_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "nela_lint/taint.h"

namespace nela::lint {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

// ---------------------------------------------------------------------------
// Pass 1: split a translation unit into per-line code, comment, and
// string-literal streams. String and character literals are blanked in the
// code stream (identifier rules must not match inside them); their contents
// go to the literal stream (for rules about what strings may spell, like
// shard-path); comment text goes to the comment stream (for bare-todo and
// suppression matching).

struct SourceLines {
  std::vector<std::string> code;
  std::vector<std::string> comment;
  std::vector<std::string> literal;
};

SourceLines SplitSource(const std::string& text) {
  SourceLines out;
  std::string code_line;
  std::string comment_line;
  std::string literal_line;
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  State state = State::kCode;
  std::string raw_terminator;  // ")delim\"" for the active raw string
  const size_t n = text.size();
  for (size_t i = 0; i < n; ++i) {
    const char c = text[i];
    const char next = i + 1 < n ? text[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      out.code.push_back(code_line);
      out.comment.push_back(comment_line);
      out.literal.push_back(literal_line);
      code_line.clear();
      comment_line.clear();
      literal_line.clear();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"' && i > 0 && text[i - 1] == 'R' &&
                   (i < 2 || !IsIdentChar(text[i - 2]))) {
          // Raw string literal R"delim( ... )delim". The 'R' was already
          // emitted to the code stream; that is harmless.
          raw_terminator = ")";
          size_t j = i + 1;
          while (j < n && text[j] != '(') raw_terminator += text[j++];
          raw_terminator += '"';
          i = j;  // at '(' (or end)
          state = State::kRawString;
          code_line += ' ';
        } else if (c == '"') {
          state = State::kString;
          code_line += ' ';
        } else if (c == '\'' && !(i > 0 && IsIdentChar(text[i - 1]))) {
          // Digit separators (1'000) have an identifier char before the
          // quote; real char literals do not.
          state = State::kChar;
          code_line += ' ';
        } else {
          code_line += c;
        }
        break;
      case State::kLineComment:
        comment_line += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else {
          comment_line += c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
          if (i < n) literal_line += text[i];
        } else if (c == '"') {
          state = State::kCode;
          literal_line += ' ';  // adjacent literals stay separate tokens
        } else {
          literal_line += c;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (c == raw_terminator[0] &&
            text.compare(i, raw_terminator.size(), raw_terminator) == 0) {
          i += raw_terminator.size() - 1;
          state = State::kCode;
          literal_line += ' ';
        } else {
          literal_line += c;
        }
        break;
    }
  }
  out.code.push_back(code_line);
  out.comment.push_back(comment_line);
  out.literal.push_back(literal_line);
  return out;
}

// ---------------------------------------------------------------------------
// Matching helpers.

// Finds `ident` in `line` as a whole identifier token, starting at `from`.
// Returns npos when absent.
size_t FindIdent(const std::string& line, const std::string& ident,
                 size_t from = 0) {
  size_t pos = line.find(ident, from);
  while (pos != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    const size_t end = pos + ident.size();
    const bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) return pos;
    pos = line.find(ident, pos + 1);
  }
  return std::string::npos;
}

// True when the first non-space character at or after `pos` is `want`.
bool NextNonSpaceIs(const std::string& line, size_t pos, char want) {
  while (pos < line.size() &&
         std::isspace(static_cast<unsigned char>(line[pos])) != 0) {
    ++pos;
  }
  return pos < line.size() && line[pos] == want;
}

// Counts top-level (depth-1) commas of the parenthesized argument list that
// opens at `lines[line_idx][open_pos]` (which must be '('), scanning across
// lines. Returns -1 when the list never closes (malformed input).
int TopLevelCommas(const std::vector<std::string>& lines, size_t line_idx,
                   size_t open_pos) {
  int depth = 0;
  int commas = 0;
  for (size_t l = line_idx; l < lines.size(); ++l) {
    const std::string& line = lines[l];
    for (size_t i = l == line_idx ? open_pos : 0; i < line.size(); ++i) {
      const char c = line[i];
      if (c == '(' || c == '[' || c == '{') {
        ++depth;
      } else if (c == ')' || c == ']' || c == '}') {
        --depth;
        if (depth == 0) return commas;
      } else if (c == ',' && depth == 1) {
        ++commas;
      }
    }
  }
  return -1;
}

// ---------------------------------------------------------------------------
// Per-file rule scoping.

struct FileScope {
  bool is_library = false;       // under src/
  bool is_rng_home = false;      // src/util/rng.*
  bool is_time_home = false;     // src/util/timer.h
  bool is_thread_home = false;   // src/util/thread_pool.*, steal_deque.h
  bool is_net_internal = false;  // src/net/*
  // src/durability/* (WAL + checkpoints), src/data/dataset_io.*,
  // src/util/csv.* -- the only library homes allowed to touch files.
  bool is_file_io_home = false;
  // src/durability/* -- the only home allowed to spell per-shard durable
  // path components (shard_layout.h is the single source of the layout).
  bool is_shard_layout_home = false;
};

FileScope ClassifyPath(const std::string& path) {
  FileScope scope;
  scope.is_library = StartsWith(path, "src/");
  scope.is_rng_home = path == "src/util/rng.h" || path == "src/util/rng.cc";
  scope.is_time_home = path == "src/util/timer.h";
  scope.is_thread_home = path == "src/util/thread_pool.h" ||
                         path == "src/util/thread_pool.cc" ||
                         path == "src/util/steal_deque.h";
  scope.is_net_internal = StartsWith(path, "src/net/");
  scope.is_file_io_home = StartsWith(path, "src/durability/") ||
                          StartsWith(path, "src/data/dataset_io.") ||
                          StartsWith(path, "src/util/csv.");
  scope.is_shard_layout_home = StartsWith(path, "src/durability/");
  return scope;
}

// ---------------------------------------------------------------------------
// The checker.

class FileLinter {
 public:
  FileLinter(const std::string& path, const std::string& contents)
      : path_(path), contents_(contents), scope_(ClassifyPath(path)),
        src_(SplitSource(contents)) {}

  std::vector<Finding> Run() {
    if (!scope_.is_rng_home) CheckRawRandom();
    if (!scope_.is_time_home && !scope_.is_rng_home) CheckRawTime();
    if (!scope_.is_thread_home) CheckRawThread();
    if (scope_.is_library) CheckStdoutIo();
    if (scope_.is_library && !scope_.is_net_internal) CheckUntaggedSend();
    if (scope_.is_library && !scope_.is_file_io_home) CheckRawFileIo();
    if (!scope_.is_shard_layout_home) CheckShardPath();
    CheckRawLock();
    if (scope_.is_library && !scope_.is_net_internal) CheckCoordinateTaint();
    CheckBareTodo();
    return std::move(findings_);
  }

 private:
  void Report(const std::string& rule, size_t line_idx,
              const std::string& message) {
    if (Suppressed(rule, line_idx)) return;
    findings_.push_back(
        Finding{rule, path_, static_cast<int>(line_idx) + 1, message});
  }

  bool Suppressed(const std::string& rule, size_t line_idx) const {
    const std::string marker = "nela-lint: allow(" + rule + ")";
    if (src_.comment[line_idx].find(marker) != std::string::npos) return true;
    return line_idx > 0 &&
           src_.comment[line_idx - 1].find(marker) != std::string::npos;
  }

  void FlagIdent(const std::string& rule, const std::string& ident,
                 const std::string& message, bool must_call = false) {
    for (size_t l = 0; l < src_.code.size(); ++l) {
      const size_t pos = FindIdent(src_.code[l], ident);
      if (pos == std::string::npos) continue;
      if (must_call &&
          !NextNonSpaceIs(src_.code[l], pos + ident.size(), '(')) {
        continue;
      }
      Report(rule, l, message);
    }
  }

  void CheckRawRandom() {
    const char* kMessage =
        "unseeded/platform randomness source; draw from an explicitly "
        "seeded util::Rng (src/util/rng.h) instead";
    for (const char* ident :
         {"random_device", "mt19937", "mt19937_64", "default_random_engine",
          "minstd_rand", "minstd_rand0"}) {
      FlagIdent("raw-random", ident, kMessage);
    }
    for (const char* ident : {"rand", "srand", "rand_r", "drand48"}) {
      FlagIdent("raw-random", ident, kMessage, /*must_call=*/true);
    }
  }

  void CheckRawTime() {
    const char* kMessage =
        "direct clock access; time is measurement-only in this tree -- use "
        "util::WallTimer / util::ThreadCpuSeconds (src/util/timer.h)";
    for (size_t l = 0; l < src_.code.size(); ++l) {
      const std::string& line = src_.code[l];
      // steady_clock::now(), system_clock::now(), Clock::now(), ...
      size_t pos = line.find("::now");
      while (pos != std::string::npos) {
        if (NextNonSpaceIs(line, pos + 5, '(')) {
          Report("raw-time", l, kMessage);
          break;
        }
        pos = line.find("::now", pos + 1);
      }
    }
    for (const char* ident :
         {"time", "clock", "clock_gettime", "gettimeofday", "localtime",
          "gmtime", "timespec_get"}) {
      FlagIdent("raw-time", ident, kMessage, /*must_call=*/true);
    }
  }

  void CheckRawThread() {
    const char* kMessage =
        "raw thread creation; run on the shared util::ThreadPool "
        "(src/util/thread_pool.h) so the fork-join partition stays "
        "deterministic";
    for (size_t l = 0; l < src_.code.size(); ++l) {
      const std::string& line = src_.code[l];
      for (const char* spelling : {"std::thread", "std::jthread"}) {
        const size_t len = std::string(spelling).size();
        size_t pos = line.find(spelling);
        bool flagged = false;
        while (pos != std::string::npos) {
          const size_t end = pos + len;
          // std::thread::id / std::this_thread are not thread creation.
          const bool qualified =
              end + 1 < line.size() && line[end] == ':' && line[end + 1] == ':';
          if (!qualified && (end >= line.size() || !IsIdentChar(line[end]))) {
            Report("raw-thread", l, kMessage);
            flagged = true;
            break;
          }
          pos = line.find(spelling, pos + 1);
        }
        if (flagged) break;
      }
    }
    FlagIdent("raw-thread", "pthread_create",
              "raw thread creation; run on the shared util::ThreadPool",
              /*must_call=*/true);
  }

  void CheckStdoutIo() {
    const char* kMessage =
        "stdout I/O in library code; libraries report through util::Status "
        "and the request TraceSink (stderr diagnostics via NELA_CHECK are "
        "fine)";
    for (size_t l = 0; l < src_.code.size(); ++l) {
      const std::string& line = src_.code[l];
      if (line.find("std::cout") != std::string::npos) {
        Report("stdout-io", l, kMessage);
        continue;
      }
      const size_t printf_pos = FindIdent(line, "printf");
      if (printf_pos != std::string::npos &&
          NextNonSpaceIs(line, printf_pos + 6, '(')) {
        Report("stdout-io", l, kMessage);
        continue;
      }
      const size_t fprintf_pos = FindIdent(line, "fprintf");
      if (fprintf_pos != std::string::npos) {
        const size_t open = line.find('(', fprintf_pos);
        if (open != std::string::npos &&
            FindIdent(line, "stdout", open) != std::string::npos) {
          Report("stdout-io", l, kMessage);
          continue;
        }
      }
      for (const char* ident : {"puts", "putchar"}) {
        const size_t pos = FindIdent(line, ident);
        if (pos != std::string::npos &&
            NextNonSpaceIs(line, pos + std::string(ident).size(), '(')) {
          Report("stdout-io", l, kMessage);
          break;
        }
      }
    }
  }

  // The taint-tracking contract (DESIGN.md "Threat model & verification"):
  // library traffic goes through the net::Message overloads so the payload
  // descriptor reaches the adversary observer, and each constructed message
  // either populates its descriptor or declares it empty.
  void CheckUntaggedSend() {
    for (size_t l = 0; l < src_.code.size(); ++l) {
      const std::string& line = src_.code[l];
      // (a) Positional Network::Send(from, to, kind, bytes, ...): >= 3 args.
      //     The Message overload takes at most (message, scope).
      for (size_t pos = line.find("Send("); pos != std::string::npos;
           pos = line.find("Send(", pos + 1)) {
        const bool is_member_call =
            (pos >= 1 && line[pos - 1] == '.') ||
            (pos >= 2 && line[pos - 2] == '-' && line[pos - 1] == '>');
        if (!is_member_call) continue;
        const int commas = TopLevelCommas(src_.code, l, pos + 4);
        if (commas >= 2) {
          Report("untagged-send", l,
                 "positional Network::Send carries no PayloadDescriptor; "
                 "build a net::Message so the adversary observer sees the "
                 "payload");
        }
      }
      // (b) Positional SendWithRetry(network, from, to, kind, bytes,
      //     policy, rng, ...): >= 6 args. Message form has 5.
      const size_t retry_pos = FindIdent(line, "SendWithRetry");
      if (retry_pos != std::string::npos) {
        const size_t open = line.find('(', retry_pos);
        if (open != std::string::npos) {
          const int commas = TopLevelCommas(src_.code, l, open);
          if (commas >= 5) {
            Report("untagged-send", l,
                   "positional SendWithRetry carries no PayloadDescriptor; "
                   "use the net::Message overload");
          }
        }
      }
      // (c) Every locally built net::Message must populate its descriptor
      //     (payload.Add within the construction window) or declare it
      //     intentionally empty: nela-lint: empty-payload(reason).
      const size_t msg_pos = FindMessageToken(line);
      if (msg_pos != std::string::npos) {
        size_t after = msg_pos + std::string("net::Message").size();
        while (after < line.size() &&
               std::isspace(static_cast<unsigned char>(line[after])) != 0) {
          ++after;
        }
        // A declaration of a local ("net::Message message;"), not a
        // parameter/reference/return type.
        if (after < line.size() && IsIdentChar(line[after])) {
          size_t id_end = after;
          while (id_end < line.size() && IsIdentChar(line[id_end])) ++id_end;
          if (id_end < line.size() && line[id_end] == ';') {
            if (!MessageWindowOk(l)) {
              Report("untagged-send", l,
                     "net::Message built without populating its "
                     "PayloadDescriptor; call payload.Add(tag, subject, "
                     "value) or annotate the declaration with "
                     "`nela-lint: empty-payload(reason)`");
            }
          }
        }
      }
    }
  }

  // Finds "net::Message" as a complete token (net::MessageKind must not
  // match).
  static size_t FindMessageToken(const std::string& line) {
    const std::string token = "net::Message";
    size_t pos = line.find(token);
    while (pos != std::string::npos) {
      const size_t end = pos + token.size();
      if (end >= line.size() || !IsIdentChar(line[end])) return pos;
      pos = line.find(token, pos + 1);
    }
    return std::string::npos;
  }

  // Scans the message-construction window: from the declaration to the next
  // net::Message declaration or kWindow lines, whichever comes first.
  bool MessageWindowOk(size_t decl_line) const {
    static constexpr size_t kWindow = 16;
    if (src_.comment[decl_line].find("nela-lint: empty-payload(") !=
        std::string::npos) {
      return true;
    }
    const size_t limit = std::min(src_.code.size(), decl_line + kWindow);
    for (size_t l = decl_line + 1; l < limit; ++l) {
      if (FindMessageToken(src_.code[l]) != std::string::npos) break;
      if (src_.code[l].find("payload.Add(") != std::string::npos) return true;
    }
    return false;
  }

  // File-I/O conventions (DESIGN.md "Durability & recovery"): durable state
  // is written through the checksummed WAL/checkpoint formats in
  // src/durability, and the only other library files are the dataset and
  // CSV writers. Ad-hoc file handling elsewhere in src/ bypasses the
  // torn-write discipline crash recovery depends on.
  void CheckRawFileIo() {
    const char* kMessage =
        "raw file I/O in library code; durable state goes through "
        "src/durability (WAL/checkpoint), bulk data through the "
        "dataset/CSV writers -- move the I/O there or annotate with "
        "nela-lint: allow(raw-file-io)";
    for (const char* ident : {"fopen", "freopen", "fwrite", "fread"}) {
      FlagIdent("raw-file-io", ident, kMessage, /*must_call=*/true);
    }
    // Stream types flag as bare identifiers so `#include <fstream>` and
    // member declarations are caught, not just construction sites.
    for (const char* ident : {"ifstream", "ofstream", "fstream"}) {
      FlagIdent("raw-file-io", ident, kMessage);
    }
  }

  // Per-shard durable state layout (DESIGN.md "Sharding & cross-shard
  // clustering"): the directory scheme under a sharded durability base dir
  // is owned by src/durability/shard_layout.h, and every other file must go
  // through its helpers. A string literal spelling the directory-name
  // prefix anywhere else is a caller about to hand-build a path into some
  // shard's directory -- which would silently bypass the per-shard
  // recovery contract (recovering shard s touches only shard s's files).
  void CheckShardPath() {
    // Assembled, not spelled inline, so this file passes its own rule.
    const std::string needle = std::string("shard") + "-";
    const char* kMessage =
        "inlined per-shard directory component; durable paths under a "
        "sharded base dir are spelled only by the shard_layout.h helpers "
        "(durability::ShardDir / ShardWalPath / ShardCheckpointDir)";
    for (size_t l = 0; l < src_.literal.size(); ++l) {
      const std::string& line = src_.literal[l];
      for (size_t pos = line.find(needle); pos != std::string::npos;
           pos = line.find(needle, pos + 1)) {
        // A path component is the prefix plus a shard number: flag when a
        // digit follows, or when the literal ends right after the prefix
        // (the `"shard-" + std::to_string(s)` builder shape; literals are
        // space-separated in this stream). Spelling the rule's own id,
        // "shard-path", is not a path and stays legal.
        const size_t after = pos + needle.size();
        const bool literal_ends = after >= line.size() || line[after] == ' ';
        const bool digit_follows =
            after < line.size() &&
            std::isdigit(static_cast<unsigned char>(line[after])) != 0;
        if (literal_ends || digit_follows) {
          Report("shard-path", l, kMessage);
          break;
        }
      }
    }
  }

  // Bare mutex manipulation (DESIGN.md "Compile-time adversary"): every
  // lock in this tree is a util::Mutex taken through the annotated
  // util::MutexLock guard, which is what lets Clang's thread-safety
  // analysis prove GUARDED_BY coverage. A bare .lock()/.unlock() pair is
  // invisible to that analysis and leaks on early return; the only
  // justified sites are inside util/mutex.h itself (the RAII home), which
  // carries per-line allows. Tree-wide: tests and tools hold the same
  // locks the library does.
  void CheckRawLock() {
    const char* kMessage =
        "bare mutex lock/unlock call; take locks through the annotated "
        "util::MutexLock RAII guard (src/util/mutex.h) so thread-safety "
        "analysis sees the critical section";
    for (size_t l = 0; l < src_.code.size(); ++l) {
      const std::string& line = src_.code[l];
      bool flagged = false;
      for (const char* ident : {"lock", "unlock", "try_lock"}) {
        for (size_t pos = FindIdent(line, ident); pos != std::string::npos;
             pos = FindIdent(line, ident, pos + 1)) {
          const bool member_call =
              (pos >= 1 && line[pos - 1] == '.') ||
              (pos >= 2 && line[pos - 2] == '-' && line[pos - 1] == '>');
          if (member_call &&
              NextNonSpaceIs(line, pos + std::string(ident).size(), '(')) {
            Report("raw-lock", l, kMessage);
            flagged = true;
            break;
          }
        }
        if (flagged) break;
      }
    }
  }

  // The non-exposure taint pass (taint.h holds the model). Scope matches
  // untagged-send: library code, net internals exempt.
  void CheckCoordinateTaint() {
    for (const TaintFinding& finding : RunCoordinateTaint(contents_)) {
      if (finding.line <= 0) continue;
      Report("coordinate-taint", static_cast<size_t>(finding.line) - 1,
             finding.message);
    }
  }

  void CheckBareTodo() {
    for (size_t l = 0; l < src_.comment.size(); ++l) {
      const std::string& comment = src_.comment[l];
      for (const char* marker : {"TODO", "FIXME"}) {
        const size_t pos = FindIdent(comment, marker);
        if (pos == std::string::npos) continue;
        if (!NextNonSpaceIs(comment, pos + std::string(marker).size(), '(')) {
          Report("bare-todo", l,
                 "bare TODO/FIXME; anchor it -- e.g. "
                 "TODO(roadmap#hypothesis-origin): -- so the open item "
                 "stays tracked in-tree");
        }
        break;
      }
    }
  }

  const std::string path_;
  const std::string contents_;  // raw text for the token-based taint pass
  const FileScope scope_;
  const SourceLines src_;
  std::vector<Finding> findings_;
};

bool LintableExtension(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

bool SkippedComponent(const std::filesystem::path& p) {
  for (const auto& part : p) {
    const std::string s = part.string();
    if (s == "testdata" || StartsWith(s, "build") || s == ".git") return true;
  }
  return false;
}

std::string NormalizeRelative(const std::filesystem::path& root,
                              const std::filesystem::path& file) {
  std::error_code ec;
  std::filesystem::path rel = std::filesystem::relative(file, root, ec);
  if (ec || rel.empty()) rel = file;
  return rel.generic_string();
}

}  // namespace

const std::vector<std::string>& RuleNames() {
  static const std::vector<std::string> kRules = {
      "raw-random", "raw-time",    "raw-thread",       "stdout-io",
      "untagged-send", "bare-todo", "raw-file-io",     "shard-path",
      "raw-lock",   "coordinate-taint",
  };
  return kRules;
}

std::vector<Finding> LintFile(const std::string& path,
                              const std::string& contents) {
  return FileLinter(path, contents).Run();
}

std::vector<Finding> LintPaths(const std::string& root,
                               const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  const fs::path root_path(root);
  std::vector<fs::path> files;
  for (const std::string& p : paths) {
    fs::path full = fs::path(p).is_absolute() ? fs::path(p) : root_path / p;
    std::error_code ec;
    if (fs::is_directory(full, ec)) {
      for (auto it = fs::recursive_directory_iterator(full, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file() && LintableExtension(it->path()) &&
            !SkippedComponent(fs::relative(it->path(), root_path, ec))) {
          files.push_back(it->path());
        }
      }
    } else {
      files.push_back(full);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<Finding> findings;
  for (const fs::path& file : files) {
    const std::string rel = NormalizeRelative(root_path, file);
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      findings.push_back(Finding{"io-error", rel, 0, "cannot read file"});
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::vector<Finding> file_findings = LintFile(rel, buffer.str());
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }
  return findings;
}

std::vector<std::string> FilesFromCompileCommands(const std::string& json) {
  std::vector<std::string> files;
  const std::string key = "\"file\"";
  size_t pos = json.find(key);
  while (pos != std::string::npos) {
    size_t colon = json.find(':', pos + key.size());
    if (colon == std::string::npos) break;
    size_t open = json.find('"', colon + 1);
    if (open == std::string::npos) break;
    std::string value;
    size_t i = open + 1;
    while (i < json.size() && json[i] != '"') {
      if (json[i] == '\\' && i + 1 < json.size()) ++i;
      value += json[i++];
    }
    if (std::find(files.begin(), files.end(), value) == files.end()) {
      files.push_back(value);
    }
    pos = json.find(key, i);
  }
  return files;
}

std::string FormatFinding(const Finding& finding) {
  std::ostringstream out;
  out << finding.path << ":" << finding.line << ": [" << finding.rule << "] "
      << finding.message;
  return out.str();
}

}  // namespace nela::lint
