#include "nela_lint/taint.h"

#include <map>
#include <set>
#include <string>
#include <vector>

#include "nela_lint/lexer.h"

namespace nela::lint {
namespace {

// Type names whose values carry a coordinate.
bool IsSourceTypeName(const std::string& ident) {
  return ident == "Point" || ident == "PrivateScalar";
}

// Keywords that own a parenthesized head before a brace -- their `) {` is
// not a function definition.
bool IsControlKeyword(const std::string& ident) {
  return ident == "if" || ident == "for" || ident == "while" ||
         ident == "switch" || ident == "catch" || ident == "return";
}

bool IsPunct(const Token& t, const char* spelling) {
  return t.kind == TokenKind::kPunct && t.text == spelling;
}

bool IsIdent(const Token& t, const char* spelling) {
  return t.kind == TokenKind::kIdentifier && t.text == spelling;
}

bool IsAssignOp(const Token& t) {
  if (t.kind != TokenKind::kPunct) return false;
  return t.text == "=" || t.text == "+=" || t.text == "-=" ||
         t.text == "*=" || t.text == "/=";
}

// One statement's tokens, sliced out of a function body.
using Slice = std::vector<Token>;

class TaintPass {
 public:
  explicit TaintPass(const std::string& contents) {
    for (Token& token : Lex(contents)) {
      if (token.kind == TokenKind::kComment) {
        comment_on_[token.line] += token.text;
      } else {
        code_.push_back(std::move(token));
      }
    }
  }

  std::vector<TaintFinding> Run() {
    BuildProducerTable();
    WalkFunctions();
    return std::move(findings_);
  }

 private:
  // -- pass A: file-level table of Point-returning helpers ----------------
  //
  // Pattern: `Point <name> (` with Point optionally qualified (geo::Point).
  // Catches free functions, methods, and Point-typed parenthesized locals;
  // the latter are harmless extra entries (nothing "calls" a local).
  void BuildProducerTable() {
    for (size_t i = 0; i + 2 < code_.size(); ++i) {
      if (!IsIdent(code_[i], "Point")) continue;
      if (code_[i + 1].kind != TokenKind::kIdentifier) continue;
      if (!IsPunct(code_[i + 2], "(")) continue;
      producers_.insert(code_[i + 1].text);
    }
  }

  // -- pass B: function segmentation --------------------------------------

  void WalkFunctions() {
    int depth = 0;
    int body_depth = -1;  // brace depth of the active function body, or -1
    for (size_t i = 0; i < code_.size(); ++i) {
      const Token& t = code_[i];
      if (IsPunct(t, "{")) {
        if (body_depth < 0) {
          size_t open_paren = 0;
          if (LooksLikeFunctionHead(i, &open_paren)) {
            body_depth = depth;
            ResetFunctionState();
            SeedParams(open_paren);
            body_start_ = i + 1;
          }
        }
        ++depth;
      } else if (IsPunct(t, "}")) {
        --depth;
        if (body_depth >= 0 && depth == body_depth) {
          AnalyzeBody(body_start_, i);
          body_depth = -1;
        }
      }
    }
  }

  // Decides whether the `{` at token index `brace` opens a function body:
  // walking back over trailing qualifiers (const, noexcept, override, a
  // trailing return type) must reach a `)` whose matching `(` follows an
  // identifier that is not a control keyword. Constructor initializer
  // lists resolve to the last initializer's parens, which is fine -- the
  // body still gets analyzed, and the "parameters" scanned there carry no
  // type markers.
  bool LooksLikeFunctionHead(size_t brace, size_t* open_paren) const {
    size_t j = brace;
    while (j > 0) {
      --j;
      const Token& t = code_[j];
      if (IsPunct(t, ")")) break;
      const bool qualifier =
          t.kind == TokenKind::kIdentifier || IsPunct(t, "::") ||
          IsPunct(t, "->") || IsPunct(t, "*") || IsPunct(t, "&") ||
          IsPunct(t, "<") || IsPunct(t, ">") || IsPunct(t, ",") ||
          IsPunct(t, ":");
      if (!qualifier) return false;
      if (j == 0) return false;
    }
    if (!IsPunct(code_[j], ")")) return false;
    // Match backward to the opening paren.
    int paren = 0;
    size_t k = j + 1;
    while (k > 0) {
      --k;
      if (IsPunct(code_[k], ")")) ++paren;
      if (IsPunct(code_[k], "(")) {
        --paren;
        if (paren == 0) break;
      }
    }
    if (paren != 0 || k == 0) return false;
    const Token& before = code_[k - 1];
    if (before.kind != TokenKind::kIdentifier) return false;
    if (IsControlKeyword(before.text)) return false;
    *open_paren = k;
    return true;
  }

  void ResetFunctionState() {
    tainted_.clear();
    message_locals_.clear();
  }

  // Marks Point/PrivateScalar-typed parameters tainted: within each
  // top-level comma group of the signature, a source-type marker taints the
  // group's last identifier (the parameter name).
  void SeedParams(size_t open_paren) {
    int paren = 0;
    bool has_marker = false;
    std::string last_ident;
    for (size_t i = open_paren; i < code_.size(); ++i) {
      const Token& t = code_[i];
      if (IsPunct(t, "(") || IsPunct(t, "[") || IsPunct(t, "{")) ++paren;
      if (IsPunct(t, ")") || IsPunct(t, "]") || IsPunct(t, "}")) {
        --paren;
        if (paren == 0) {
          if (has_marker && !last_ident.empty()) tainted_.insert(last_ident);
          return;
        }
      }
      if (paren == 1 && IsPunct(t, ",")) {
        if (has_marker && !last_ident.empty()) tainted_.insert(last_ident);
        has_marker = false;
        last_ident.clear();
        continue;
      }
      if (t.kind == TokenKind::kIdentifier) {
        if (IsSourceTypeName(t.text)) {
          has_marker = true;
        } else {
          last_ident = t.text;
        }
      }
    }
  }

  // -- per-function statement analysis ------------------------------------

  void AnalyzeBody(size_t begin, size_t end) {
    Slice statement;
    int nest = 0;
    for (size_t i = begin; i < end; ++i) {
      const Token& t = code_[i];
      if (IsPunct(t, ";") || IsPunct(t, "{") || IsPunct(t, "}")) {
        if (IsPunct(t, "{")) ++nest;
        if (IsPunct(t, "}")) --nest;
        if (!statement.empty()) {
          AnalyzeStatement(statement);
          statement.clear();
        }
        continue;
      }
      statement.push_back(t);
    }
    if (!statement.empty()) AnalyzeStatement(statement);
    (void)nest;
  }

  void AnalyzeStatement(const Slice& s) {
    TrackMessageLocals(s);
    TrackSourceDeclarations(s);
    TrackAssignment(s);
    CheckPayloadAdd(s);
    CheckSendArguments(s);
  }

  // `net::Message m;` (or any `Message m`) declares a message local whose
  // field writes are send-adjacent sinks.
  void TrackMessageLocals(const Slice& s) {
    for (size_t i = 0; i + 1 < s.size(); ++i) {
      if (IsIdent(s[i], "Message") &&
          s[i + 1].kind == TokenKind::kIdentifier) {
        message_locals_.insert(s[i + 1].text);
      }
    }
  }

  // A statement containing a source-type marker declares a tainted name:
  // the first identifier after the marker that a declarator can end on
  // (followed by `=`, `,`, `(`, `[`, `{`, or the statement end) and is not
  // itself part of the type spelling.
  void TrackSourceDeclarations(const Slice& s) {
    size_t marker = s.size();
    for (size_t i = 0; i < s.size(); ++i) {
      if (s[i].kind == TokenKind::kIdentifier &&
          IsSourceTypeName(s[i].text)) {
        marker = i;
        break;
      }
    }
    if (marker == s.size()) return;
    for (size_t i = marker + 1; i < s.size(); ++i) {
      if (s[i].kind != TokenKind::kIdentifier) continue;
      if (i > 0 && (IsPunct(s[i - 1], "::") || IsPunct(s[i - 1], ".") ||
                    IsPunct(s[i - 1], "->"))) {
        continue;  // qualified name or member access, not a declarator
      }
      const bool at_end = i + 1 == s.size();
      if (at_end || IsPunct(s[i + 1], "=") || IsPunct(s[i + 1], ",") ||
          IsPunct(s[i + 1], "(") || IsPunct(s[i + 1], "[") ||
          IsPunct(s[i + 1], "{") || IsPunct(s[i + 1], ":")) {
        // `:` covers range-for (`for (const geo::Point& p : points)`).
        tainted_.insert(s[i].text);
        return;
      }
    }
  }

  // True when the token run [begin, end) references taint: a tainted name,
  // or a producer helper being called.
  bool RangeTainted(const Slice& s, size_t begin, size_t end) const {
    for (size_t i = begin; i < end && i < s.size(); ++i) {
      if (s[i].kind != TokenKind::kIdentifier) continue;
      if (tainted_.count(s[i].text) != 0) return true;
      if (producers_.count(s[i].text) != 0 && i + 1 < end &&
          IsPunct(s[i + 1], "(")) {
        return true;
      }
    }
    return false;
  }

  // Propagation and the message-field-write sink. A top-level assignment
  // with a tainted right side either taints its left side or, when the
  // left side is a field of a message local, is itself an exposure (the
  // bytes/kind fields cross the network unaudited).
  void TrackAssignment(const Slice& s) {
    int paren = 0;
    size_t eq = s.size();
    for (size_t i = 0; i < s.size(); ++i) {
      if (IsPunct(s[i], "(") || IsPunct(s[i], "[")) ++paren;
      if (IsPunct(s[i], ")") || IsPunct(s[i], "]")) --paren;
      if (paren == 0 && IsAssignOp(s[i]) && !IsPunct(s[i], "==")) {
        eq = i;
        break;
      }
    }
    if (eq == s.size() || eq == 0) return;
    if (!RangeTainted(s, eq + 1, s.size())) return;
    // Left side: `name =` taints name; `base.field =` checks the sink and
    // otherwise taints base (a struct holding a coordinate is a carrier).
    size_t member_dot = eq;
    for (size_t i = 0; i < eq; ++i) {
      if (IsPunct(s[i], ".") || IsPunct(s[i], "->")) {
        member_dot = i;
        break;
      }
    }
    if (member_dot < eq) {
      // First identifier before the access is the base object.
      for (size_t i = member_dot; i > 0;) {
        --i;
        if (s[i].kind == TokenKind::kIdentifier) {
          if (message_locals_.count(s[i].text) != 0) {
            if (!ExposureDeclaredNear(s[eq].line)) {
              findings_.push_back(TaintFinding{
                  s[eq].line,
                  "coordinate-tainted value written into a net::Message "
                  "field; plain fields cross the network unaudited -- "
                  "route it through payload.Add with a typed FieldTag, or "
                  "declare the side channel with `nela-lint: "
                  "declare-exposure(channel)`"});
            }
          } else {
            tainted_.insert(s[i].text);
          }
          return;
        }
      }
      return;
    }
    // Plain `name = ...` (declaration initializers included: the declared
    // name is the identifier directly before `=`).
    for (size_t i = eq; i > 0;) {
      --i;
      if (s[i].kind == TokenKind::kIdentifier) {
        tainted_.insert(s[i].text);
        return;
      }
    }
  }

  // Splits the argument list opening at s[open] (must be `(`) into
  // top-level comma groups, returned as [begin, end) index pairs.
  static std::vector<std::pair<size_t, size_t>> ArgGroups(const Slice& s,
                                                          size_t open) {
    std::vector<std::pair<size_t, size_t>> groups;
    int paren = 0;
    size_t start = open + 1;
    for (size_t i = open; i < s.size(); ++i) {
      if (IsPunct(s[i], "(") || IsPunct(s[i], "[") || IsPunct(s[i], "{")) {
        ++paren;
      } else if (IsPunct(s[i], ")") || IsPunct(s[i], "]") ||
                 IsPunct(s[i], "}")) {
        --paren;
        if (paren == 0) {
          if (i > start) groups.emplace_back(start, i);
          return groups;
        }
      } else if (paren == 1 && IsPunct(s[i], ",")) {
        groups.emplace_back(start, i);
        start = i + 1;
      }
    }
    if (start < s.size()) groups.emplace_back(start, s.size());
    return groups;
  }

  bool ExposureDeclaredNear(int line) const {
    for (int l = line - 1; l <= line; ++l) {
      const auto it = comment_on_.find(l);
      if (it != comment_on_.end() &&
          it->second.find("nela-lint: declare-exposure(") !=
              std::string::npos) {
        return true;
      }
    }
    return false;
  }

  // The payload.Add(tag, subject, value) sink.
  void CheckPayloadAdd(const Slice& s) {
    for (size_t i = 2; i + 1 < s.size(); ++i) {
      if (!IsIdent(s[i], "Add")) continue;
      if (!IsPunct(s[i - 1], ".") && !IsPunct(s[i - 1], "->")) continue;
      if (!IsIdent(s[i - 2], "payload")) continue;
      if (!IsPunct(s[i + 1], "(")) continue;
      const auto groups = ArgGroups(s, i + 1);
      if (groups.empty()) continue;
      const int line = s[i].line;

      // The tag argument: literal iff it spells FieldTag::<member>.
      std::string tag;
      for (size_t j = groups[0].first; j + 2 < groups[0].second; ++j) {
        if (IsIdent(s[j], "FieldTag") && IsPunct(s[j + 1], "::") &&
            s[j + 2].kind == TokenKind::kIdentifier) {
          tag = s[j + 2].text;
          break;
        }
      }
      bool value_tainted = false;
      for (size_t g = 2; g < groups.size(); ++g) {
        value_tainted |= RangeTainted(s, groups[g].first, groups[g].second);
      }

      if (tag.empty()) {
        if (value_tainted) {
          findings_.push_back(TaintFinding{
              line,
              "coordinate-tainted value routed through a non-literal "
              "field tag; the observer cannot attribute the exposure -- "
              "spell the net::FieldTag at the Add site"});
        }
      } else if (tag == "kRawCoordinate") {
        if (!ExposureDeclaredNear(line)) {
          findings_.push_back(TaintFinding{
              line,
              "kRawCoordinate field without a declared channel; raw "
              "uploads are exposure by definition -- annotate the Add "
              "with `nela-lint: declare-exposure(channel)` on this line "
              "or the line above"});
        }
      } else if (tag == "kControl" && value_tainted) {
        findings_.push_back(TaintFinding{
            line,
            "coordinate-tainted value smuggled through the untyped "
            "kControl field; tag it (kNoisedCoordinate, "
            "kCandidateLocation, ...) or declare the exposure via "
            "kRawCoordinate + declare-exposure"});
      }
      // Any other literal tag types the exposure; the runtime observer
      // and leak contracts audit those flows.
    }
  }

  // Send / SendWithRetry argument sink: a tainted value passed positionally
  // bypasses the descriptor entirely.
  void CheckSendArguments(const Slice& s) {
    for (size_t i = 0; i + 1 < s.size(); ++i) {
      const bool is_send =
          IsIdent(s[i], "Send") && i > 0 &&
          (IsPunct(s[i - 1], ".") || IsPunct(s[i - 1], "->"));
      const bool is_retry = IsIdent(s[i], "SendWithRetry");
      if (!is_send && !is_retry) continue;
      if (!IsPunct(s[i + 1], "(")) continue;
      for (const auto& [begin, end] : ArgGroups(s, i + 1)) {
        if (RangeTainted(s, begin, end)) {
          if (!ExposureDeclaredNear(s[i].line)) {
            findings_.push_back(TaintFinding{
                s[i].line,
                "coordinate-tainted value passed positionally to " +
                    s[i].text +
                    "; positional arguments carry no PayloadDescriptor, "
                    "so the adversary observer never sees the exposure"});
          }
          break;
        }
      }
    }
  }

  std::vector<Token> code_;
  std::map<int, std::string> comment_on_;
  std::set<std::string> producers_;
  std::set<std::string> tainted_;
  std::set<std::string> message_locals_;
  size_t body_start_ = 0;
  std::vector<TaintFinding> findings_;
};

}  // namespace

std::vector<TaintFinding> RunCoordinateTaint(const std::string& contents) {
  return TaintPass(contents).Run();
}

}  // namespace nela::lint
