// nela_lint CLI. Exit codes: 0 clean, 1 findings, 2 usage/IO error.
//
//   nela_lint --root=REPO [--compile-commands=build/compile_commands.json]
//             [PATH...]
//
// PATHs are files or directories relative to --root (directories are walked
// recursively for C++ sources, skipping testdata and build trees). With
// --compile-commands, the file list of the compilation database is linted
// in addition to any PATHs, so the gate covers exactly what the build
// compiles plus the headers the PATH globs reach.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "nela_lint/lint.h"

namespace {

bool ConsumeFlag(const std::string& arg, const std::string& name,
                 std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string compile_commands;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (ConsumeFlag(arg, "root", &root)) continue;
    if (ConsumeFlag(arg, "compile-commands", &compile_commands)) continue;
    if (arg == "--list-rules") {
      for (const std::string& rule : nela::lint::RuleNames()) {
        std::printf("%s\n", rule.c_str());
      }
      return 0;
    }
    if (arg == "--help" || arg.rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "usage: nela_lint [--root=DIR] "
                   "[--compile-commands=FILE] [--list-rules] [PATH...]\n");
      return arg == "--help" ? 0 : 2;
    }
    paths.push_back(arg);
  }

  if (!compile_commands.empty()) {
    std::ifstream in(compile_commands, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "nela_lint: cannot read %s\n",
                   compile_commands.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    for (const std::string& file :
         nela::lint::FilesFromCompileCommands(buffer.str())) {
      paths.push_back(file);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "nela_lint: nothing to lint\n");
    return 2;
  }

  const std::vector<nela::lint::Finding> findings =
      nela::lint::LintPaths(root, paths);
  for (const nela::lint::Finding& finding : findings) {
    std::printf("%s\n", nela::lint::FormatFinding(finding).c_str());
  }
  if (!findings.empty()) {
    std::printf("nela_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
