// nela_lint: source-level enforcement of the repo's non-exposure and
// determinism invariants — the ones clang-tidy cannot know about.
//
// The runtime verifier (src/audit, DESIGN.md "Threat model & verification")
// proves the invariants dynamically, but only on the code paths the
// property tests execute. These rules reject the corresponding *sources* of
// violation at build time, on every path:
//
//   raw-random    rand()/std::random_device/std::mt19937/... outside
//                 src/util/rng.* — an unseeded or platform-dependent
//                 randomness source breaks bit-for-bit reproducibility and
//                 makes an exposure unreplayable.
//   raw-time      ::now()/time()/clock_gettime()/... outside
//                 src/util/timer.h — wall time used as anything but a
//                 measurement can become a protocol input and a covert
//                 ordering channel.
//   raw-thread    std::thread/pthread_create outside util::ThreadPool
//                 internals — ad-hoc threads bypass the deterministic
//                 fork-join partition the digest tests rely on.
//   stdout-io     std::cout/printf in library code (src/) — libraries
//                 report through util::Status and TraceSink; a stray print
//                 is an unaudited information channel.
//   untagged-send library send sites must use the net::Message overloads
//                 and populate (or explicitly declare empty) a
//                 PayloadDescriptor — untagged traffic is invisible to the
//                 adversary observer, so the taint-tracking contract from
//                 the runtime verifier would be silently bypassed.
//   bare-todo     to-do / fix-me comments must carry an anchor, e.g.
//                 TODO(roadmap#hypothesis-origin): — so open items (like
//                 the hypothesis-origin side channel) stay tracked in-tree.
//   raw-file-io   fopen/fwrite/fread/std::*fstream in library code outside
//                 the file-I/O homes (src/durability for WAL/checkpoints,
//                 src/data/dataset_io.*, src/util/csv.*) — ad-hoc file
//                 handling bypasses the checksummed, torn-write-tolerant
//                 formats crash recovery replays from.
//   shard-path    a string literal spelling the per-shard durable
//                 directory-name prefix outside src/durability — shard
//                 WAL/checkpoint paths are constructed only through the
//                 shard_layout.h helpers, so no caller can hand-build a
//                 path into a sibling shard's directory and break the
//                 per-shard recovery isolation contract.
//   raw-lock      bare .lock()/.unlock()/.try_lock() calls anywhere in the
//                 tree (home: none — only util/mutex.h itself carries
//                 justified allows) — manual lock manipulation escapes the
//                 annotated util::MutexLock RAII guard, so Clang's
//                 thread-safety analysis (the compile-time half of the
//                 concurrency verifier) cannot see the acquire/release and
//                 an early return leaks the lock silently.
//   coordinate-taint
//                 the lexer-backed non-exposure taint pass (taint.h): per
//                 function, values carrying a user coordinate (geo::Point,
//                 PrivateScalar, their members, noised intermediates,
//                 results of same-file Point-returning helpers) must reach
//                 network sinks only as tagged PayloadDescriptor fields —
//                 kRawCoordinate additionally requires a
//                 `nela-lint: declare-exposure(channel)` comment naming
//                 the audited raw-upload channel. Library scope, net
//                 internals exempt (they move bytes, not coordinates).
//
// Suppression: a finding on line L is suppressed when line L or L-1 carries
// the comment `nela-lint: allow(<rule>)`. Use sparingly, with a reason, e.g.
//   // nela-lint: allow(raw-thread) real threads are the point of this test
//
// The checker is token/pattern based: string literals and comments are
// blanked in the code stream before matching and kept in separate streams
// (comments for bare-todo and suppressions, literal contents for
// shard-path); multi-line call argument lists are balanced across lines.
// The coordinate-taint rule runs on a real token stream (lexer.h) because
// flow tracking does not survive a line-oriented scan.

#ifndef NELA_TOOLS_NELA_LINT_LINT_H_
#define NELA_TOOLS_NELA_LINT_LINT_H_

#include <string>
#include <vector>

namespace nela::lint {

struct Finding {
  std::string rule;     // stable rule id, e.g. "raw-random"
  std::string path;     // repo-relative path as passed in
  int line = 0;         // 1-based
  std::string message;  // human-readable explanation
};

// Names of every rule, for --list-rules and the fixture tests.
const std::vector<std::string>& RuleNames();

// Lints one file's contents. `path` must be repo-relative with forward
// slashes ("src/net/network.cc"); it selects which rules apply (library
// scoping, per-rule home-file allowlists).
std::vector<Finding> LintFile(const std::string& path,
                              const std::string& contents);

// Reads and lints every path in `paths` (repo-relative to `root`).
// Directories are walked recursively for .h/.cc/.cpp files, skipping any
// `testdata` or `build*` component. Unreadable files produce a finding with
// rule "io-error".
std::vector<Finding> LintPaths(const std::string& root,
                               const std::vector<std::string>& paths);

// Extracts the "file" entries from a compile_commands.json (minimal JSON
// scan — the format is machine-generated by CMake). Returned paths are
// absolute, deduplicated, in first-appearance order.
std::vector<std::string> FilesFromCompileCommands(const std::string& json);

// Formats one finding as "path:line: [rule] message".
std::string FormatFinding(const Finding& finding);

}  // namespace nela::lint

#endif  // NELA_TOOLS_NELA_LINT_LINT_H_
