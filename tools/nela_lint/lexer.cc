#include "nela_lint/lexer.h"

#include <cctype>

namespace nela::lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsDigit(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

// Phase 1: delete backslash-newline splices and record the physical line of
// every surviving character, so tokens report where they *started* even
// when spelled across a continuation.
//
// Known simplification: splices inside raw-string literals are removed too
// (a conforming lexer keeps them). No source in this tree puts a
// backslash-newline inside a raw string, and a lint pass that occasionally
// joins one is strictly better than one that mis-lexes every continuation.
struct SplicedSource {
  std::string text;
  std::vector<int> line_of;  // line_of[i] = physical line of text[i]
};

SplicedSource Splice(const std::string& raw) {
  SplicedSource out;
  out.text.reserve(raw.size());
  out.line_of.reserve(raw.size());
  int line = 1;
  for (size_t i = 0; i < raw.size(); ++i) {
    const char c = raw[i];
    if (c == '\\' && i + 1 < raw.size() && raw[i + 1] == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == '\\' && i + 2 < raw.size() && raw[i + 1] == '\r' &&
        raw[i + 2] == '\n') {
      ++line;
      i += 2;
      continue;
    }
    out.text.push_back(c);
    out.line_of.push_back(line);
    if (c == '\n') ++line;
  }
  return out;
}

// String/char-literal prefixes. u8R etc. open raw strings; L/u/U/u8 open
// ordinary literals.
bool IsRawStringPrefix(const std::string& ident) {
  return ident == "R" || ident == "LR" || ident == "uR" || ident == "UR" ||
         ident == "u8R";
}

bool IsLiteralPrefix(const std::string& ident) {
  return ident == "L" || ident == "u" || ident == "U" || ident == "u8";
}

// Multi-character operators, longest first so maximal munch falls out of
// ordered matching. Digraphs carry their normalized spelling.
struct Operator {
  const char* spelling;
  const char* normalized;
};

constexpr Operator kOperators[] = {
    {"%:%:", "##"},
    {"<<=", "<<="}, {">>=", ">>="}, {"...", "..."}, {"->*", "->*"},
    {"::", "::"}, {"->", "->"}, {"<<", "<<"}, {">>", ">>"}, {"<=", "<="},
    {">=", ">="}, {"==", "=="}, {"!=", "!="}, {"&&", "&&"}, {"||", "||"},
    {"++", "++"}, {"--", "--"}, {"+=", "+="}, {"-=", "-="}, {"*=", "*="},
    {"/=", "/="}, {"%=", "%="}, {"&=", "&="}, {"|=", "|="}, {"^=", "^="},
    {".*", ".*"}, {"##", "##"},
    {"<%", "{"}, {"%>", "}"}, {"<:", "["}, {":>", "]"}, {"%:", "#"},
};

class Lexer {
 public:
  explicit Lexer(const std::string& raw) : src_(Splice(raw)) {}

  std::vector<Token> Run() {
    const std::string& s = src_.text;
    const size_t n = s.size();
    while (pos_ < n) {
      const char c = s[pos_];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
        continue;
      }
      if (c == '/' && pos_ + 1 < n && s[pos_ + 1] == '/') {
        LexLineComment();
        continue;
      }
      if (c == '/' && pos_ + 1 < n && s[pos_ + 1] == '*') {
        LexBlockComment();
        continue;
      }
      if (IsIdentStart(c)) {
        LexIdentifierOrPrefixedLiteral();
        continue;
      }
      if (IsDigit(c) || (c == '.' && pos_ + 1 < n && IsDigit(s[pos_ + 1]))) {
        LexNumber();
        continue;
      }
      if (c == '"') {
        LexString(pos_);
        continue;
      }
      if (c == '\'') {
        LexCharLiteral(pos_);
        continue;
      }
      LexPunct();
    }
    return std::move(tokens_);
  }

 private:
  int LineAt(size_t pos) const {
    if (src_.line_of.empty()) return 1;
    if (pos >= src_.line_of.size()) return src_.line_of.back();
    return src_.line_of[pos];
  }

  void Emit(TokenKind kind, std::string text, size_t start_pos) {
    tokens_.push_back(Token{kind, std::move(text), LineAt(start_pos)});
  }

  void LexLineComment() {
    const size_t start = pos_;
    pos_ += 2;
    std::string text;
    while (pos_ < src_.text.size() && src_.text[pos_] != '\n') {
      text += src_.text[pos_++];
    }
    Emit(TokenKind::kComment, std::move(text), start);
  }

  void LexBlockComment() {
    const size_t start = pos_;
    pos_ += 2;
    std::string text;
    // Block comments do not nest: the first */ ends the comment even when
    // another /* appeared inside it.
    while (pos_ < src_.text.size()) {
      if (src_.text[pos_] == '*' && pos_ + 1 < src_.text.size() &&
          src_.text[pos_ + 1] == '/') {
        pos_ += 2;
        Emit(TokenKind::kComment, std::move(text), start);
        return;
      }
      text += src_.text[pos_++];
    }
    Emit(TokenKind::kComment, std::move(text), start);  // unterminated
  }

  void LexIdentifierOrPrefixedLiteral() {
    const size_t start = pos_;
    std::string ident;
    while (pos_ < src_.text.size() && IsIdentChar(src_.text[pos_])) {
      ident += src_.text[pos_++];
    }
    if (pos_ < src_.text.size() && src_.text[pos_] == '"') {
      if (IsRawStringPrefix(ident)) {
        LexRawString(start);
        return;
      }
      if (IsLiteralPrefix(ident)) {
        LexString(start);
        return;
      }
    }
    if (pos_ < src_.text.size() && src_.text[pos_] == '\'' &&
        IsLiteralPrefix(ident)) {
      LexCharLiteral(start);
      return;
    }
    Emit(TokenKind::kIdentifier, std::move(ident), start);
  }

  // pp-number: digits, identifier chars, '.', digit separators, and signed
  // exponents (1e+9, 0x1p-3). Broader than any single literal grammar,
  // exactly like the preprocessor's own token.
  void LexNumber() {
    const size_t start = pos_;
    const std::string& s = src_.text;
    std::string text;
    while (pos_ < s.size()) {
      const char c = s[pos_];
      if (IsIdentChar(c) || c == '.') {
        text += c;
        ++pos_;
        continue;
      }
      if (c == '\'' && pos_ + 1 < s.size() && IsIdentChar(s[pos_ + 1]) &&
          !text.empty()) {
        text += c;  // digit separator
        ++pos_;
        continue;
      }
      if ((c == '+' || c == '-') && !text.empty()) {
        const char prev = text.back();
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          text += c;
          ++pos_;
          continue;
        }
      }
      break;
    }
    Emit(TokenKind::kNumber, std::move(text), start);
  }

  // `start_pos` is where the token began (the prefix, for L"..."); pos_ is
  // at the opening quote.
  void LexString(size_t start_pos) {
    const std::string& s = src_.text;
    ++pos_;  // opening quote
    std::string text;
    while (pos_ < s.size() && s[pos_] != '"') {
      if (s[pos_] == '\\' && pos_ + 1 < s.size()) {
        text += s[pos_];
        text += s[pos_ + 1];
        pos_ += 2;
        continue;
      }
      text += s[pos_++];
    }
    if (pos_ < s.size()) ++pos_;  // closing quote
    Emit(TokenKind::kString, std::move(text), start_pos);
  }

  void LexCharLiteral(size_t start_pos) {
    const std::string& s = src_.text;
    ++pos_;  // opening quote
    std::string text;
    while (pos_ < s.size() && s[pos_] != '\'') {
      if (s[pos_] == '\\' && pos_ + 1 < s.size()) {
        text += s[pos_];
        text += s[pos_ + 1];
        pos_ += 2;
        continue;
      }
      text += s[pos_++];
    }
    if (pos_ < s.size()) ++pos_;  // closing quote
    Emit(TokenKind::kCharLiteral, std::move(text), start_pos);
  }

  // R"delim( ... )delim" -- no escapes, terminated only by the exact
  // )delim" sequence.
  void LexRawString(size_t start_pos) {
    const std::string& s = src_.text;
    ++pos_;  // opening quote
    std::string terminator = ")";
    while (pos_ < s.size() && s[pos_] != '(') terminator += s[pos_++];
    terminator += '"';
    if (pos_ < s.size()) ++pos_;  // opening '('
    std::string text;
    while (pos_ < s.size()) {
      if (s[pos_] == ')' &&
          s.compare(pos_, terminator.size(), terminator) == 0) {
        pos_ += terminator.size();
        Emit(TokenKind::kString, std::move(text), start_pos);
        return;
      }
      text += s[pos_++];
    }
    Emit(TokenKind::kString, std::move(text), start_pos);  // unterminated
  }

  void LexPunct() {
    const std::string& s = src_.text;
    const size_t start = pos_;
    // Maximal-munch exception: "<::" where the next character is neither
    // ':' nor '>' lexes as "<" "::", not the "<:" digraph -- otherwise
    // Foo<::Bar> would open a square bracket.
    if (s.compare(pos_, 2, "<:") == 0 && pos_ + 2 < s.size() &&
        s[pos_ + 2] == ':' &&
        (pos_ + 3 >= s.size() ||
         (s[pos_ + 3] != ':' && s[pos_ + 3] != '>'))) {
      ++pos_;
      Emit(TokenKind::kPunct, "<", start);
      return;
    }
    for (const Operator& op : kOperators) {
      const size_t len = std::char_traits<char>::length(op.spelling);
      if (s.compare(pos_, len, op.spelling) == 0) {
        pos_ += len;
        Emit(TokenKind::kPunct, op.normalized, start);
        return;
      }
    }
    Emit(TokenKind::kPunct, std::string(1, s[pos_]), start);
    ++pos_;
  }

  SplicedSource src_;
  size_t pos_ = 0;
  std::vector<Token> tokens_;
};

}  // namespace

std::vector<Token> Lex(const std::string& text) { return Lexer(text).Run(); }

}  // namespace nela::lint
