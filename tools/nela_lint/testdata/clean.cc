// Fixture: no rule may fire. Exercises the look-alikes each rule must NOT
// match: seeded util::Rng, util::WallTimer, std::this_thread /
// std::thread::id, stderr diagnostics, a tagged net::Message, a declared
// empty payload, an anchored to-do note, and rule patterns inside strings
// and comments.
#include <cstdio>
#include <string>
#include <thread>

#include "net/network.h"
#include "util/rng.h"
#include "util/timer.h"

namespace nela::fake {

// TODO(roadmap#hypothesis-origin): anchored items are allowed.
double CleanSample(util::Rng& rng) {
  // Mentioning rand() or std::random_device in a comment is fine.
  const std::string docs = "call srand(seed) and time(nullptr) elsewhere";
  std::fprintf(stderr, "diagnostics go to stderr: %s\n", docs.c_str());
  const util::WallTimer timer;
  const std::thread::id self = std::this_thread::get_id();
  (void)self;
  return rng.NextDouble() + timer.ElapsedSeconds();
}

void TaggedSend(net::Network& network) {
  net::Message message;
  message.from = 0;
  message.to = 1;
  message.kind = net::MessageKind::kBoundProposal;
  message.bytes = 16;
  message.payload.Add(net::FieldTag::kBoundHypothesis, net::kPublicSubject,
                      0.5);
  network.Send(message);

  net::Message heartbeat;  // nela-lint: empty-payload(control traffic)
  heartbeat.from = 0;
  heartbeat.to = 1;
  heartbeat.kind = net::MessageKind::kControl;
  heartbeat.bytes = 1;
  network.Send(heartbeat, nullptr);
}

}  // namespace nela::fake
