// Fixture: no rule may fire. Exercises the look-alikes each rule must NOT
// match: seeded util::Rng, util::WallTimer, std::this_thread /
// std::thread::id, stderr diagnostics, a tagged net::Message, a declared
// empty payload, an anchored to-do note, the util::MutexLock RAII guard
// (vs. bare lock calls), sanctioned coordinate flows (typed tags and a
// declared kRawCoordinate channel), and rule patterns inside strings and
// comments.
#include <cstdio>
#include <string>
#include <thread>

#include "geo/point.h"
#include "net/network.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/timer.h"

namespace nela::fake {

// TODO(roadmap#hypothesis-origin): anchored items are allowed.
double CleanSample(util::Rng& rng) {
  // Mentioning rand() or std::random_device in a comment is fine.
  // Writing mu.lock() in a comment or string is not a lock call.
  const std::string docs =
      "call srand(seed), time(nullptr), and mu.lock() elsewhere";
  std::fprintf(stderr, "diagnostics go to stderr: %s\n", docs.c_str());
  const util::WallTimer timer;
  const std::thread::id self = std::this_thread::get_id();
  (void)self;
  return rng.NextDouble() + timer.ElapsedSeconds();
}

void TaggedSend(net::Network& network) {
  net::Message message;
  message.from = 0;
  message.to = 1;
  message.kind = net::MessageKind::kBoundProposal;
  message.bytes = 16;
  message.payload.Add(net::FieldTag::kBoundHypothesis, net::kPublicSubject,
                      0.5);
  network.Send(message);

  net::Message heartbeat;  // nela-lint: empty-payload(control traffic)
  heartbeat.from = 0;
  heartbeat.to = 1;
  heartbeat.kind = net::MessageKind::kControl;
  heartbeat.bytes = 1;
  network.Send(heartbeat, nullptr);
}

// Sanctioned coordinate flows: a noised probe under its typed tag (the tag
// IS the declaration -- the runtime observer audits the flow), and a raw
// upload on a declared channel. The taint pass must stay silent on both.
void SanctionedFlows(net::Network& network, const geo::Point& own,
                     util::Rng& rng) {
  const geo::Point probe{own.x + rng.NextDouble() * 0.01, own.y};
  net::Message request;
  request.from = 0;
  request.to = 1;
  request.kind = net::MessageKind::kServiceRequest;
  request.bytes = 16;
  request.payload.Add(net::FieldTag::kNoisedCoordinate, 0, probe.x);
  request.payload.Add(net::FieldTag::kNoisedCoordinate, 0, probe.y);
  network.Send(request);

  net::Message upload;
  upload.from = 0;
  upload.to = 1;
  upload.kind = net::MessageKind::kControl;
  upload.bytes = 16;
  // nela-lint: declare-exposure(fixture-upload)
  upload.payload.Add(net::FieldTag::kRawCoordinate, 0, own.x);
  network.Send(upload);
}

// Locks are taken through the annotated RAII guard; raw-lock must not see
// a bare .lock()/.unlock() here.
uint64_t GuardedBump(util::Mutex& mu, uint64_t* counter) {
  util::MutexLock lock(mu);
  return ++*counter;
}

}  // namespace nela::fake
