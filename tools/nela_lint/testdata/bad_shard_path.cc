// Fixture: shard-path must fire (hand-built per-shard directory path
// instead of the src/durability/shard_layout.h helpers).
#include <string>

namespace nela::fake {

std::string ShardStateDir(const std::string& base, unsigned shard) {
  return base + "/shard-" + std::to_string(shard) + "/wal.log";
}

}  // namespace nela::fake
