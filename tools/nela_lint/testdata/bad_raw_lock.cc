// Fixture: raw-lock must fire on every bare mutex manipulation — lock(),
// unlock(), and try_lock(), through both member-access spellings. Manual
// lock calls escape the annotated util::MutexLock guard, so thread-safety
// analysis never sees the critical section (and an early return between
// the pair leaks the lock).
#include <mutex>

namespace nela::fake {

int g_counter = 0;

void Bump(std::mutex& mu) {
  mu.lock();
  ++g_counter;
  mu.unlock();
}

bool TryBump(std::mutex* mu) {
  if (!mu->try_lock()) return false;
  ++g_counter;
  mu->unlock();
  return true;
}

}  // namespace nela::fake
