// Fixture: raw-file-io must fire (library code touching files directly
// instead of going through src/durability or the dataset/CSV writers).
#include <cstdio>
#include <fstream>

namespace nela::fake {

void PersistState(const char* path) {
  std::FILE* file = fopen(path, "wb");
  const unsigned char byte = 0;
  fwrite(&byte, 1, 1, file);
  std::ofstream mirror("mirror.bin");
  mirror << byte;
}

}  // namespace nela::fake
