// Fixture: raw-thread must fire (ad-hoc thread outside util::ThreadPool).
#include <thread>

namespace nela::fake {

void FireAndForget() {
  std::thread worker([] {});
  worker.join();
}

}  // namespace nela::fake
