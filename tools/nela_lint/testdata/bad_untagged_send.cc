// Fixture: untagged-send must fire three ways — a positional Network::Send,
// a positional SendWithRetry, and a net::Message whose PayloadDescriptor is
// neither populated nor declared empty.
#include "net/network.h"
#include "net/retry.h"

namespace nela::fake {

void LeakyBroadcast(net::Network& network, util::Rng* rng) {
  network.Send(0, 1, net::MessageKind::kBoundProposal, 16);

  net::BackoffPolicy policy;
  net::SendWithRetry(network, 0, 1, net::MessageKind::kBoundVote, 8, policy,
                     rng);

  net::Message message;
  message.from = 0;
  message.to = 1;
  message.kind = net::MessageKind::kClusterAssignment;
  message.bytes = 32;
  network.Send(message);
}

}  // namespace nela::fake
