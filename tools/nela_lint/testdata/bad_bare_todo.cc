// Fixture: bare-todo must fire.

namespace nela::fake {

// TODO: randomize the hypothesis schedule origin someday.
int Placeholder() { return 0; }

}  // namespace nela::fake
