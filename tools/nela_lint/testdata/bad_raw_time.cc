// Fixture: raw-time must fire (a clock read outside util/timer.h).
#include <chrono>

namespace nela::fake {

uint64_t SeedFromWallClock() {
  const auto now = std::chrono::steady_clock::now();
  return static_cast<uint64_t>(now.time_since_epoch().count());
}

}  // namespace nela::fake
