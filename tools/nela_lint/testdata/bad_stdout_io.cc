// Fixture: stdout-io must fire (library code printing to stdout).
#include <cstdio>
#include <iostream>

namespace nela::fake {

void ReportProgress(int done) {
  std::cout << "done: " << done << "\n";
  printf("done: %d\n", done);
}

}  // namespace nela::fake
