// Fixture: raw-random must fire. Never compiled; linted with a synthetic
// src/-relative path by tests/lint_tool_test.cc.
#include <random>

namespace nela::fake {

double UnseededSample() {
  std::random_device device;
  std::mt19937 engine(device());
  return static_cast<double>(engine()) / 4294967295.0;
}

}  // namespace nela::fake
