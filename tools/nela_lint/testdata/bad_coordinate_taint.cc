// Fixture: coordinate-taint must fire four ways — a coordinate laundered
// through a local double into the untyped kControl field, a same-file
// Point-returning helper reaching a net::Message field write, a
// kRawCoordinate field with no declared exposure channel, and a value
// routed through a non-literal tag. Every message populates its payload,
// so untagged-send stays silent and the taint pass is the only rule that
// may fire.
#include "geo/point.h"
#include "net/network.h"

namespace nela::fake {

// A producer: its return value carries a coordinate, so calls to it taint
// whatever receives the result.
geo::Point Centroid(const std::vector<geo::Point>& points) {
  geo::Point sum;
  for (const geo::Point& p : points) {
    sum.x += p.x;
    sum.y += p.y;
  }
  return sum;
}

// Mutant 1: the raw x-coordinate hides in an innocently named local, then
// ships as an untyped kControl value the observer cannot attribute.
void SmuggleThroughControl(net::Network& network, const geo::Point& own) {
  const double session_nonce = own.x;
  net::Message message;
  message.from = 0;
  message.to = 1;
  message.kind = net::MessageKind::kControl;
  message.bytes = 16;
  message.payload.Add(net::FieldTag::kControl, 0, session_nonce);
  network.Send(message);
}

// Mutant 2: a helper's Point return value reaches the wire through a plain
// message field — no tag, no descriptor entry, nothing for the observer.
void HelperReachesField(net::Network& network,
                        const std::vector<geo::Point>& points) {
  const double center_x = Centroid(points).x;
  net::Message message;
  message.from = 0;
  message.to = 1;
  message.kind = net::MessageKind::kControl;
  message.bytes = 16;
  message.payload.Add(net::FieldTag::kBoundHypothesis, 0, 0.5);
  message.bytes = static_cast<uint64_t>(center_x * 1024.0);
  network.Send(message);
}

// Mutant 3: kRawCoordinate without a declare-exposure(channel) comment —
// a raw upload is exposure by definition and must name its channel.
void UndeclaredRawUpload(net::Network& network, const geo::Point& own) {
  net::Message upload;
  upload.from = 0;
  upload.to = 1;
  upload.kind = net::MessageKind::kControl;
  upload.bytes = 16;
  upload.payload.Add(net::FieldTag::kRawCoordinate, 0, own.y);
  network.Send(upload);
}

// Mutant 4: the tag arrives through a variable, so the observer cannot
// attribute the exposure even though a tag was technically supplied.
void LaunderedTag(net::Network& network, const geo::Point& own,
                  net::FieldTag tag) {
  net::Message message;
  message.from = 0;
  message.to = 1;
  message.kind = net::MessageKind::kControl;
  message.bytes = 16;
  message.payload.Add(tag, 0, own.x);
  network.Send(message);
}

}  // namespace nela::fake
