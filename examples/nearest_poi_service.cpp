// Example: a privacy-preserving "restaurants near me" service.
//
// A mobile user wants POIs around their position without telling the LBS
// server where they are. The client cloaks via the engine, sends the
// cloaked rectangle as a range query, receives the candidate superset, and
// filters locally to the true nearest results -- the server only ever sees
// a box that at least k users share.
//
// Build & run:  ./build/examples/nearest_poi_service

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "cluster/distributed_tconn.h"
#include "core/cloaking_engine.h"
#include "core/policy_factory.h"
#include "data/generators.h"
#include "graph/wpg_builder.h"
#include "lbs/poi_database.h"
#include "lbs/server.h"
#include "util/rng.h"

int main() {
  nela::util::Rng rng(7);

  // The paper's model: every user stands at a POI and the service is a
  // range query over the same POI dataset.
  nela::data::RoadNetworkParams geography;
  geography.count = 30000;
  geography.num_cities = 300;
  const nela::data::Dataset users =
      nela::data::GenerateRoadNetwork(geography, rng);
  const nela::data::Dataset& pois = users;

  nela::graph::WpgBuildParams proximity;
  proximity.delta = 3.8e-3;
  auto wpg = nela::graph::BuildWpg(users, proximity);
  NELA_CHECK(wpg.ok());

  nela::cluster::Registry registry(users.size());
  nela::core::BoundingParams bounding;
  bounding.density = static_cast<double>(users.size());
  nela::core::CloakingEngine engine(
      users,
      std::make_unique<nela::cluster::DistributedTConnClusterer>(
          wpg.value(), 10, &registry),
      &registry, nela::core::MakeSecurePolicyFactory(bounding));

  // Server side.
  const nela::lbs::PoiDatabase database(pois);
  const nela::lbs::LbsServer server(&database, /*poi_payload_ratio=*/1000.0);

  // Client side: cloak, query, filter.
  const nela::data::UserId me = 12345;
  const nela::geo::Point my_position = users.point(me);
  auto cloaked = engine.RequestCloaking(me);
  if (!cloaked.ok() || !cloaked.value().anonymity_satisfied) {
    std::fprintf(stderr, "could not obtain a k-anonymous region\n");
    return 1;
  }
  // Ask for a little margin so the k nearest POIs are certainly inside.
  const nela::geo::Rect query_region =
      cloaked.value().region.Inflated(5e-3);
  const auto candidates = database.RangeQuery(query_region);
  const nela::lbs::ServiceReply reply = server.RangeQuery(query_region);
  std::printf("cloaked region area %.2e shared by %zu users\n",
              cloaked.value().region.Area(),
              registry.info(cloaked.value().cluster_id).members.size());
  std::printf("server returned %llu candidate POIs (reply cost %.0f units)\n",
              static_cast<unsigned long long>(reply.candidate_count),
              reply.reply_cost);

  // Local filtering: the true 5 nearest from the candidate superset. The
  // server never learns which candidates were kept.
  std::vector<std::pair<double, uint32_t>> ranked;
  for (uint32_t id : candidates) {
    ranked.push_back({nela::geo::Distance(my_position, pois.point(id)), id});
  }
  std::sort(ranked.begin(), ranked.end());
  std::printf("5 nearest POIs (filtered on the device):\n");
  for (size_t i = 0; i < ranked.size() && i < 5; ++i) {
    std::printf("  poi %-6u at distance %.4f\n", ranked[i].second,
                ranked[i].first);
  }
  return 0;
}
