// Quickstart: the complete non-exposure cloaking workflow in ~60 lines.
//
//   1. Generate a user population (stand-in for GPS-equipped devices).
//   2. Build the weighted proximity graph from RSS-rank measurements.
//   3. Create a cloaking engine with the distributed t-Conn clusterer and
//      the secure progressive-bounding policy.
//   4. Request cloaking for a host user and inspect the outcome.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "cluster/distributed_tconn.h"
#include "cluster/registry.h"
#include "core/cloaking_engine.h"
#include "core/policy_factory.h"
#include "data/generators.h"
#include "graph/wpg_builder.h"
#include "util/rng.h"

int main() {
  // 1. A 20,000-user world (clustered like real POI data).
  nela::util::Rng rng(42);
  nela::data::RoadNetworkParams world;
  world.count = 20000;
  world.num_cities = 200;
  const nela::data::Dataset users = nela::data::GenerateRoadNetwork(world, rng);

  // 2. Proximity graph: radio range delta, at most M mutual peers, edge
  //    weights from mutual RSS ranks. No coordinates are involved beyond
  //    this point -- the graph is what devices can measure over the air.
  nela::graph::WpgBuildParams proximity;
  proximity.delta = 4.6e-3;
  proximity.max_peers = 10;
  auto wpg = nela::graph::BuildWpg(users, proximity);
  if (!wpg.ok()) {
    std::fprintf(stderr, "WPG build failed: %s\n",
                 wpg.status().ToString().c_str());
    return 1;
  }
  std::printf("proximity graph: %u users, %u links, avg degree %.1f\n",
              wpg.value().vertex_count(), wpg.value().edge_count(),
              wpg.value().AverageDegree());

  // 3. Engine: k = 10 anonymity, phase 1 = distributed t-Conn, phase 2 =
  //    secure progressive bounding with the paper's cost model.
  const uint32_t k = 10;
  nela::cluster::Registry registry(users.size());
  nela::core::BoundingParams bounding;
  bounding.density = static_cast<double>(users.size());
  nela::core::CloakingEngine engine(
      users,
      std::make_unique<nela::cluster::DistributedTConnClusterer>(
          wpg.value(), k, &registry),
      &registry, nela::core::MakeSecurePolicyFactory(bounding));

  // 4. A host user asks for a cloaked region.
  const nela::data::UserId host = 4321;
  auto outcome = engine.RequestCloaking(host);
  if (!outcome.ok()) {
    std::fprintf(stderr, "cloaking failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }
  const auto& o = outcome.value();
  const auto& info = registry.info(o.cluster_id);
  std::printf("host %u cloaked with %zu peers (k-anonymity %s)\n", host,
              info.members.size() - 1,
              o.anonymity_satisfied ? "satisfied" : "NOT satisfied");
  std::printf("cloaked region: [%.4f, %.4f] x [%.4f, %.4f]  area %.2e\n",
              o.region.min_x(), o.region.max_x(), o.region.min_y(),
              o.region.max_y(), o.region.Area());
  std::printf("phase 1 involved %llu users; phase 2 took %u rounds and %llu "
              "verifications\n",
              static_cast<unsigned long long>(o.clustering_messages),
              o.bounding_iterations,
              static_cast<unsigned long long>(o.bounding_verifications));

  // The same user asking again reuses the region at zero cost.
  auto again = engine.RequestCloaking(host);
  std::printf("second request reused the region: %s\n",
              again.ok() && again.value().region_reused ? "yes" : "no");
  return 0;
}
