// Example: deployment comparison -- distributed peer-to-peer cloaking vs a
// centralized anonymizer vs the kNN baseline, on one shared world.
//
// Shows the operational trade-off of Fig. 3's two phase-1 paths: the
// anonymizer clusters everyone on the first request (one big flood, then
// free), the distributed algorithm pays per neighborhood, and the kNN
// baseline is cheap per request but its regions degrade as users are
// consumed.
//
// Build & run:  ./build/examples/anonymizer_comparison

#include <cstdio>
#include <memory>
#include <vector>

#include "cluster/centralized_tconn.h"
#include "cluster/distributed_tconn.h"
#include "cluster/knn_clustering.h"
#include "core/cloaking_engine.h"
#include "core/policy_factory.h"
#include "data/generators.h"
#include "graph/wpg_builder.h"
#include "sim/workload.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

struct Deployment {
  const char* name;
  std::unique_ptr<nela::cluster::Registry> registry;
  std::unique_ptr<nela::core::CloakingEngine> engine;
};

}  // namespace

int main() {
  nela::util::Rng rng(21);
  nela::data::RoadNetworkParams world;
  world.count = 30000;
  world.num_cities = 300;
  const nela::data::Dataset users = nela::data::GenerateRoadNetwork(world, rng);
  nela::graph::WpgBuildParams proximity;
  proximity.delta = 3.8e-3;
  auto wpg = nela::graph::BuildWpg(users, proximity);
  NELA_CHECK(wpg.ok());
  const nela::graph::Wpg& graph = wpg.value();
  const uint32_t k = 10;

  nela::core::BoundingParams bounding;
  bounding.density = static_cast<double>(users.size());
  const auto policy_factory = nela::core::MakeSecurePolicyFactory(bounding);

  std::vector<Deployment> deployments;
  {
    auto registry = std::make_unique<nela::cluster::Registry>(users.size());
    auto engine = std::make_unique<nela::core::CloakingEngine>(
        users,
        std::make_unique<nela::cluster::DistributedTConnClusterer>(
            graph, k, registry.get()),
        registry.get(), policy_factory);
    deployments.push_back(
        {"p2p t-Conn", std::move(registry), std::move(engine)});
  }
  {
    auto registry = std::make_unique<nela::cluster::Registry>(users.size());
    auto engine = std::make_unique<nela::core::CloakingEngine>(
        users,
        std::make_unique<nela::cluster::CentralizedTConnClusterer>(
            graph, k, registry.get()),
        registry.get(), policy_factory);
    deployments.push_back(
        {"anonymizer", std::move(registry), std::move(engine)});
  }
  {
    auto registry = std::make_unique<nela::cluster::Registry>(
        users.size(), /*allow_overlap=*/true);
    auto engine = std::make_unique<nela::core::CloakingEngine>(
        users,
        std::make_unique<nela::cluster::KnnClusterer>(
            graph, k, registry.get(), nullptr,
            nela::cluster::KnnTieBreak::kVertexId,
            nela::cluster::KnnReuse::kAlwaysFresh),
        registry.get(), policy_factory);
    deployments.push_back(
        {"kNN baseline", std::move(registry), std::move(engine)});
  }

  nela::util::Rng workload_rng(5);
  const auto hosts =
      nela::sim::SampleWorkload(users.size(), 1500, workload_rng);

  std::printf("%-14s %14s %14s %14s %10s\n", "deployment", "comm/request",
              "region area", "bounding cost", "unserved");
  for (Deployment& deployment : deployments) {
    nela::util::OnlineStats comm;
    nela::util::OnlineStats area;
    nela::util::OnlineStats bounding_cost;
    uint32_t unserved = 0;
    for (nela::data::UserId host : hosts) {
      auto outcome = deployment.engine->RequestCloaking(host);
      NELA_CHECK(outcome.ok());
      comm.Add(static_cast<double>(outcome.value().clustering_messages));
      area.Add(outcome.value().region.Area());
      bounding_cost.Add(
          static_cast<double>(outcome.value().bounding_verifications));
      if (!outcome.value().anonymity_satisfied) ++unserved;
    }
    std::printf("%-14s %14.1f %14.3g %14.1f %10u\n", deployment.name,
                comm.Mean(), area.Mean(), bounding_cost.Mean(), unserved);
  }
  std::printf(
      "\n'unserved' counts requests whose neighborhood could not reach "
      "k=%u users.\n",
      k);
  return 0;
}
