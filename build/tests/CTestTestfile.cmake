# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/spatial_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/hierarchy_test[1]_include.cmake")
include("/root/repo/build/tests/connectivity_test[1]_include.cmake")
include("/root/repo/build/tests/registry_test[1]_include.cmake")
include("/root/repo/build/tests/centralized_tconn_test[1]_include.cmake")
include("/root/repo/build/tests/distributed_tconn_test[1]_include.cmake")
include("/root/repo/build/tests/knn_clustering_test[1]_include.cmake")
include("/root/repo/build/tests/network_test[1]_include.cmake")
include("/root/repo/build/tests/bounding_math_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_test[1]_include.cmake")
include("/root/repo/build/tests/lbs_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/road_network_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_property_test[1]_include.cmake")
include("/root/repo/build/tests/concurrency_test[1]_include.cmake")
include("/root/repo/build/tests/krnn_audit_test[1]_include.cmake")
