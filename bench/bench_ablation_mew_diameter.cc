// Ablation: how loose is the maximum-edge-weight (MEW) objective as a
// proxy for the true weighted cluster diameter (Corollary 4.2's
// justification)? For the clusters the centralized algorithm produces on
// the default scenario, report MEW, the exact weighted diameter, their
// ratio, and the Corollary 4.2 bound evaluated at the cluster's size and
// average degree.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "cluster/centralized_tconn.h"
#include "graph/metrics.h"
#include "sim/scenario.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/stats.h"

namespace {

int Run(int argc, char** argv) {
  int64_t users = 104770;
  int64_t k = 10;
  int64_t sample = 400;
  std::string output_dir = "bench_results";
  nela::util::FlagParser flags;
  flags.AddInt64("users", &users, "population size");
  flags.AddInt64("k", &k, "anonymity requirement");
  flags.AddInt64("sample", &sample, "number of clusters to measure");
  flags.AddString("output_dir", &output_dir, "where CSVs are written");
  nela::util::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    return status.code() == nela::util::StatusCode::kOutOfRange ? 0 : 1;
  }

  std::printf("=== Ablation: MEW vs true weighted diameter ===\n");
  nela::sim::ScenarioConfig scenario_config;
  scenario_config.user_count = static_cast<uint32_t>(users);
  auto scenario = nela::sim::BuildScenario(scenario_config);
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  const nela::graph::Wpg& graph = scenario.value().graph;
  const nela::cluster::Partition partition =
      nela::cluster::CentralizedKClustering(graph,
                                            static_cast<uint32_t>(k));

  nela::util::OnlineStats mew_stats;
  nela::util::OnlineStats diameter_stats;
  nela::util::OnlineStats ratio_stats;
  nela::util::OnlineStats bound_gap_stats;
  nela::util::CsvWriter csv;
  csv.SetHeader({"cluster_size", "mew", "diameter", "corollary_bound"});
  int measured = 0;
  for (const auto& cluster : partition.clusters) {
    if (measured >= sample) break;
    if (cluster.size() < static_cast<size_t>(k)) continue;
    const double mew = nela::graph::MaxEdgeWeightWithin(graph, cluster);
    const double diameter =
        nela::graph::WeightedDiameter(graph, cluster);
    if (!std::isfinite(diameter) || diameter <= 0.0) continue;
    // Average degree inside the cluster, floored at 3 for the bound.
    double degree_sum = 0.0;
    for (auto v : cluster) degree_sum += graph.Degree(v);
    const uint32_t degree = std::max<uint32_t>(
        3, static_cast<uint32_t>(degree_sum / static_cast<double>(cluster.size())));
    const double bound = nela::graph::RegularGraphDiameterBound(
        static_cast<uint32_t>(cluster.size()), degree, mew);
    mew_stats.Add(mew);
    diameter_stats.Add(diameter);
    ratio_stats.Add(diameter / mew);
    bound_gap_stats.Add(bound / diameter);
    csv.AddRow({std::to_string(cluster.size()),
                nela::util::CsvWriter::Cell(mew),
                nela::util::CsvWriter::Cell(diameter),
                nela::util::CsvWriter::Cell(bound)});
    ++measured;
  }
  std::printf("clusters measured: %d (k=%lld)\n", measured,
              static_cast<long long>(k));
  std::printf("avg MEW:                 %.3f\n", mew_stats.Mean());
  std::printf("avg weighted diameter:   %.3f\n", diameter_stats.Mean());
  std::printf("avg diameter/MEW:        %.3f (min %.3f max %.3f)\n",
              ratio_stats.Mean(), ratio_stats.Min(), ratio_stats.Max());
  std::printf("avg corollary-4.2 bound / diameter: %.3f (>= 1 everywhere: %s)\n",
              bound_gap_stats.Mean(),
              bound_gap_stats.Min() >= 1.0 ? "yes" : "NO");
  return nela::bench::EmitCsv(csv, output_dir, "ablation_mew_diameter").ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
