// Figure 11 (a, b): average communication cost and cloaked-region size of
// the three k-clustering algorithms as the anonymity requirement k varies.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "sim/clustering_experiment.h"
#include "sim/scenario.h"
#include "util/csv.h"
#include "util/flags.h"

namespace {

using nela::sim::ClusteringAlgorithm;

int Run(int argc, char** argv) {
  int64_t users = 104770;
  int64_t requests = 2000;
  std::string output_dir = "bench_results";
  nela::util::FlagParser flags;
  flags.AddInt64("users", &users, "population size");
  flags.AddInt64("requests", &requests, "cloaking requests S");
  flags.AddString("output_dir", &output_dir, "where CSVs are written");
  nela::util::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    return status.code() == nela::util::StatusCode::kOutOfRange ? 0 : 1;
  }

  std::printf("=== Fig. 11: performance under various k ===\n");
  std::printf("users=%lld S=%lld (default M, delta)\n\n",
              static_cast<long long>(users),
              static_cast<long long>(requests));

  nela::sim::ScenarioConfig scenario_config;
  scenario_config.user_count = static_cast<uint32_t>(users);
  auto scenario = nela::sim::BuildScenario(scenario_config);
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }

  nela::util::CsvWriter csv;
  csv.SetHeader({"k", "algorithm", "avg_comm_cost", "avg_cloaked_area"});
  nela::bench::PrintRow(
      {"k", "algorithm", "comm cost", "cloaked size (1e-4)"});
  nela::bench::PrintRule(4);
  const ClusteringAlgorithm algorithms[] = {
      ClusteringAlgorithm::kDistributedTConn, ClusteringAlgorithm::kKnn,
      ClusteringAlgorithm::kCentralizedTConn};
  for (uint32_t k : {5u, 10u, 20u, 30u, 40u, 50u}) {
    for (ClusteringAlgorithm algorithm : algorithms) {
      nela::sim::ClusteringExperimentConfig config;
      config.k = k;
      config.requests = static_cast<uint32_t>(requests);
      auto result = nela::sim::RunClusteringExperiment(scenario.value(),
                                                       algorithm, config);
      if (!result.ok()) {
        std::fprintf(stderr, "experiment failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      const char* name = nela::sim::ClusteringAlgorithmName(algorithm);
      nela::bench::PrintRow(
          {std::to_string(k), name,
           nela::util::CsvWriter::Cell(result.value().avg_comm_cost),
           nela::util::CsvWriter::Cell(result.value().avg_cloaked_area *
                                       1e4)});
      csv.AddRow({std::to_string(k), name,
                  nela::util::CsvWriter::Cell(result.value().avg_comm_cost),
                  nela::util::CsvWriter::Cell(
                      result.value().avg_cloaked_area)});
    }
  }
  return nela::bench::EmitCsv(csv, output_dir, "fig11_k").ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
