// Ablation: the value of Algorithm 2's border-vertex isolation check.
// Runs the same workload with the check enabled and disabled and compares
// the later requesters' cluster quality (cloaked size), the per-request
// communication, and the number of invalid (sub-k) clusters -- the check's
// whole point is protecting users who request *after* their neighborhood
// was carved up.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "cluster/distributed_tconn.h"
#include "geo/rect.h"
#include "sim/scenario.h"
#include "sim/workload.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

struct RunResult {
  double avg_area_late = 0.0;  // cloaked size of the last third of requests
  double avg_comm = 0.0;
  uint32_t invalid = 0;
};

RunResult RunOnce(const nela::sim::Scenario& scenario, uint32_t k,
                  const std::vector<nela::data::UserId>& hosts,
                  bool isolation_enabled) {
  nela::cluster::Registry registry(scenario.dataset.size());
  nela::cluster::DistributedTConnClusterer clusterer(scenario.graph, k,
                                                     &registry);
  clusterer.set_isolation_check_enabled(isolation_enabled);
  RunResult result;
  nela::util::OnlineStats late_area;
  nela::util::OnlineStats comm;
  const size_t late_start = hosts.size() * 2 / 3;
  for (size_t i = 0; i < hosts.size(); ++i) {
    auto outcome = clusterer.ClusterFor(hosts[i]);
    NELA_CHECK(outcome.ok());
    comm.Add(static_cast<double>(outcome.value().involved_users));
    const auto& info = registry.info(outcome.value().cluster_id);
    if (!info.valid) ++result.invalid;
    if (i >= late_start) {
      nela::geo::Rect box;
      for (auto member : info.members) {
        box.ExpandToInclude(scenario.dataset.point(member));
      }
      late_area.Add(box.Area());
    }
  }
  result.avg_area_late = late_area.Mean();
  result.avg_comm = comm.Mean();
  return result;
}

int Run(int argc, char** argv) {
  int64_t users = 104770;
  int64_t k = 10;
  int64_t requests = 2000;
  std::string output_dir = "bench_results";
  nela::util::FlagParser flags;
  flags.AddInt64("users", &users, "population size");
  flags.AddInt64("k", &k, "anonymity requirement");
  flags.AddInt64("requests", &requests, "cloaking requests S");
  flags.AddString("output_dir", &output_dir, "where CSVs are written");
  nela::util::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    return status.code() == nela::util::StatusCode::kOutOfRange ? 0 : 1;
  }

  std::printf("=== Ablation: Algorithm 2 isolation check on/off ===\n");
  nela::sim::ScenarioConfig scenario_config;
  scenario_config.user_count = static_cast<uint32_t>(users);
  auto scenario = nela::sim::BuildScenario(scenario_config);
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  nela::util::Rng workload_rng(7);
  const auto hosts = nela::sim::SampleWorkload(
      scenario.value().dataset.size(), static_cast<uint32_t>(requests),
      workload_rng);

  nela::util::CsvWriter csv;
  csv.SetHeader({"isolation_check", "avg_late_area", "avg_comm_cost",
                 "invalid_requests"});
  nela::bench::PrintRow({"isolation check", "late-request size (1e-4)",
                         "comm cost", "invalid"});
  nela::bench::PrintRule(4);
  for (bool enabled : {true, false}) {
    const RunResult result = RunOnce(
        scenario.value(), static_cast<uint32_t>(k), hosts, enabled);
    nela::bench::PrintRow(
        {enabled ? "on" : "off",
         nela::util::CsvWriter::Cell(result.avg_area_late * 1e4),
         nela::util::CsvWriter::Cell(result.avg_comm),
         std::to_string(result.invalid)});
    csv.AddRow({enabled ? "on" : "off",
                nela::util::CsvWriter::Cell(result.avg_area_late),
                nela::util::CsvWriter::Cell(result.avg_comm),
                std::to_string(result.invalid)});
  }
  return nela::bench::EmitCsv(csv, output_dir, "ablation_isolation").ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
