// Figure 10: overall communication cost (clustering messages + service
// request payload) as the POI-object / clustering-message size ratio
// varies. The clustering run is performed once per algorithm; the total is
// then avg_comm + avg_candidates * ratio.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "sim/clustering_experiment.h"
#include "sim/scenario.h"
#include "util/csv.h"
#include "util/flags.h"

namespace {

using nela::sim::ClusteringAlgorithm;

int Run(int argc, char** argv) {
  int64_t users = 104770;
  int64_t k = 10;
  int64_t requests = 2000;
  std::string output_dir = "bench_results";
  nela::util::FlagParser flags;
  flags.AddInt64("users", &users, "population size");
  flags.AddInt64("k", &k, "anonymity requirement");
  flags.AddInt64("requests", &requests, "cloaking requests S");
  flags.AddString("output_dir", &output_dir, "where CSVs are written");
  nela::util::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    return status.code() == nela::util::StatusCode::kOutOfRange ? 0 : 1;
  }

  std::printf(
      "=== Fig. 10: overall communication cost vs POI payload ratio ===\n");
  std::printf("users=%lld k=%lld S=%lld (default M)\n\n",
              static_cast<long long>(users), static_cast<long long>(k),
              static_cast<long long>(requests));

  nela::sim::ScenarioConfig scenario_config;
  scenario_config.user_count = static_cast<uint32_t>(users);
  auto scenario = nela::sim::BuildScenario(scenario_config);
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }

  struct AlgorithmRun {
    ClusteringAlgorithm algorithm;
    double comm = 0.0;
    double candidates = 0.0;
  };
  std::vector<AlgorithmRun> runs = {
      {ClusteringAlgorithm::kDistributedTConn},
      {ClusteringAlgorithm::kKnn},
      {ClusteringAlgorithm::kCentralizedTConn}};
  for (AlgorithmRun& run : runs) {
    nela::sim::ClusteringExperimentConfig config;
    config.k = static_cast<uint32_t>(k);
    config.requests = static_cast<uint32_t>(requests);
    auto result = nela::sim::RunClusteringExperiment(scenario.value(),
                                                     run.algorithm, config);
    if (!result.ok()) {
      std::fprintf(stderr, "experiment failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    run.comm = result.value().avg_comm_cost;
    run.candidates = result.value().avg_candidates;
  }

  nela::util::CsvWriter csv;
  csv.SetHeader({"poi_to_message_ratio", "algorithm", "avg_total_cost"});
  nela::bench::PrintRow(
      {"POI/msg ratio", "t-Conn", "kNN", "centralized t-Conn"});
  nela::bench::PrintRule(4);
  for (double ratio : {1.0, 2.0, 5.0, 10.0, 15.0, 20.0}) {
    std::vector<std::string> row = {nela::util::CsvWriter::Cell(ratio)};
    for (const AlgorithmRun& run : runs) {
      const double total = run.comm + run.candidates * ratio;
      row.push_back(nela::util::CsvWriter::Cell(total));
      csv.AddRow({nela::util::CsvWriter::Cell(ratio),
                  nela::sim::ClusteringAlgorithmName(run.algorithm),
                  nela::util::CsvWriter::Cell(total)});
    }
    nela::bench::PrintRow(row);
  }
  return nela::bench::EmitCsv(csv, output_dir, "fig10_total_cost").ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
