// Ablation: the exact N-bounding dynamic program (Equation 3) vs the
// closed-form approximation (Equation 5). Reports, per N, the two optimal
// increments and the DP's expected total cost, plus the wall time of each
// solver -- quantifying what the paper's "CPU-intensive" remark trades
// against.

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "bounding/cost_model.h"
#include "bounding/distribution.h"
#include "bounding/nbound.h"
#include "bounding/unary.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/timer.h"

namespace {

int Run(int argc, char** argv) {
  double upper = 1.0;
  double cr = 1000.0;
  double cb = 1.0;
  int64_t max_n = 32;
  std::string output_dir = "bench_results";
  nela::util::FlagParser flags;
  flags.AddDouble("upper", &upper, "uniform support U");
  flags.AddDouble("cr", &cr, "quadratic cost coefficient");
  flags.AddDouble("cb", &cb, "verification cost Cb");
  flags.AddInt64("max_n", &max_n, "largest N to tabulate");
  flags.AddString("output_dir", &output_dir, "where CSVs are written");
  nela::util::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    return status.code() == nela::util::StatusCode::kOutOfRange ? 0 : 1;
  }

  std::printf("=== Ablation: exact DP (Eq. 3) vs closed form (Eq. 5) ===\n");
  std::printf("Uniform(0,%g), R(x) = %g x^2, Cb = %g\n\n", upper, cr, cb);

  const nela::bounding::UniformDistribution distribution(upper);
  const nela::bounding::QuadraticCost cost(cr);

  nela::util::WallTimer unary_timer;
  const nela::bounding::UnarySolution unary =
      nela::bounding::SolveUnary(distribution, cost, cb);
  const double unary_ms = unary_timer.ElapsedMillis();

  nela::util::WallTimer dp_timer;
  const nela::bounding::ExactNBoundTable table(
      distribution, cost, cb, static_cast<uint32_t>(max_n));
  const double dp_ms = dp_timer.ElapsedMillis();

  nela::util::CsvWriter csv;
  csv.SetHeader({"n", "eq5_increment", "dp_increment", "dp_expected_cost"});
  nela::bench::PrintRow({"N", "Eq.5 x", "DP x", "DP C*(N)", "x ratio"});
  nela::bench::PrintRule(5);
  nela::util::WallTimer eq5_timer;
  for (uint32_t n = 1; n <= static_cast<uint32_t>(max_n); ++n) {
    const double approx = nela::bounding::SolveNBoundIncrement(
        distribution, cost, cb, n, unary);
    const double exact = table.increment(n);
    nela::bench::PrintRow({std::to_string(n),
                           nela::util::CsvWriter::Cell(approx),
                           nela::util::CsvWriter::Cell(exact),
                           nela::util::CsvWriter::Cell(table.expected_cost(n)),
                           nela::util::CsvWriter::Cell(approx / exact)});
    csv.AddRow({std::to_string(n), nela::util::CsvWriter::Cell(approx),
                nela::util::CsvWriter::Cell(exact),
                nela::util::CsvWriter::Cell(table.expected_cost(n))});
  }
  const double eq5_ms = eq5_timer.ElapsedMillis();
  std::printf("\nCPU: unary solve %.3f ms; Eq.5 for N=1..%lld %.3f ms; "
              "exact DP table %.3f ms (%.0fx the closed form)\n",
              unary_ms, static_cast<long long>(max_n), eq5_ms, dp_ms,
              eq5_ms > 0 ? dp_ms / eq5_ms : 0.0);
  return nela::bench::EmitCsv(csv, output_dir, "ablation_nbound_dp").ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
