// Ablation (the paper's §VII future work): tightness vs privacy loss of
// the progressive bounding policies. A user that rejects X and accepts X'
// exposes its value to the interval (X, X']; finer increments mean tighter
// regions but narrower exposure intervals. This bench reports, per policy,
// the final bound overshoot and the distribution of exposure-interval
// widths over a synthetic cluster.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bounding/increment_policy.h"
#include "bounding/privacy_loss.h"
#include "bounding/protocol.h"
#include "bounding/secret.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

int Run(int argc, char** argv) {
  int64_t cluster_size = 20;
  int64_t trials = 500;
  double extent = 1.0;
  std::string output_dir = "bench_results";
  nela::util::FlagParser flags;
  flags.AddInt64("cluster_size", &cluster_size, "users per cluster");
  flags.AddInt64("trials", &trials, "number of synthetic clusters");
  flags.AddDouble("extent", &extent, "offset range of the cluster");
  flags.AddString("output_dir", &output_dir, "where CSVs are written");
  nela::util::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    return status.code() == nela::util::StatusCode::kOutOfRange ? 0 : 1;
  }

  std::printf("=== Ablation: bound tightness vs privacy loss ===\n");
  std::printf("cluster_size=%lld trials=%lld extent=%g\n\n",
              static_cast<long long>(cluster_size),
              static_cast<long long>(trials), extent);

  nela::util::Rng rng(99);
  nela::util::CsvWriter csv;
  csv.SetHeader({"policy", "avg_overshoot", "avg_interval", "min_interval",
                 "avg_verifications"});
  nela::bench::PrintRow({"policy", "overshoot", "avg interval",
                         "min interval", "verifications"});
  nela::bench::PrintRule(5);

  const nela::bounding::UniformDistribution model(extent);
  const nela::bounding::QuadraticCost cost(1000.0);
  for (int policy_id = 0; policy_id < 3; ++policy_id) {
    nela::util::OnlineStats overshoot;
    nela::util::OnlineStats interval;
    nela::util::OnlineStats min_interval;
    nela::util::OnlineStats verifications;
    const char* name = nullptr;
    for (int64_t t = 0; t < trials; ++t) {
      std::vector<double> values;
      double max_value = 0.0;
      for (int64_t i = 0; i < cluster_size; ++i) {
        values.push_back(rng.NextDouble(0.0, extent));
        max_value = std::max(max_value, values.back());
      }
      const auto secrets = nela::bounding::MakePrivate(values);

      nela::bounding::LinearIncrementPolicy linear(extent / 50.0);
      nela::bounding::ExponentialIncrementPolicy exponential(extent / 50.0);
      nela::bounding::SecureIncrementPolicy secure(model, cost, 1.0);
      nela::bounding::IncrementPolicy* policies[3] = {&linear, &exponential,
                                                      &secure};
      name = policies[policy_id]->name();
      const nela::bounding::BoundingRunResult run =
          nela::bounding::RunProgressiveUpperBounding(
              secrets, 0.0, *policies[policy_id]).value();
      const nela::bounding::PrivacyLossReport report =
          nela::bounding::AnalyzePrivacyLoss(run, 0.0);
      overshoot.Add(run.bound - max_value);
      interval.Add(report.mean_width);
      min_interval.Add(report.min_width);
      verifications.Add(static_cast<double>(run.verifications));
    }
    nela::bench::PrintRow({name,
                           nela::util::CsvWriter::Cell(overshoot.Mean()),
                           nela::util::CsvWriter::Cell(interval.Mean()),
                           nela::util::CsvWriter::Cell(min_interval.Mean()),
                           nela::util::CsvWriter::Cell(verifications.Mean())});
    csv.AddRow({name, nela::util::CsvWriter::Cell(overshoot.Mean()),
                nela::util::CsvWriter::Cell(interval.Mean()),
                nela::util::CsvWriter::Cell(min_interval.Mean()),
                nela::util::CsvWriter::Cell(verifications.Mean())});
  }
  std::printf(
      "\nNote: a tighter bound (small overshoot) comes with narrower\n"
      "exposure intervals (more privacy lost per user) -- the trade-off\n"
      "the paper flags as future work.\n");
  return nela::bench::EmitCsv(csv, output_dir, "ablation_privacy_loss").ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
