// Hot-path microbenchmarks (google-benchmark): WPG construction, merge
// hierarchy, centralized partition, one distributed clustering request,
// spatial index queries, and a secure bounding run.

#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "bounding/increment_policy.h"
#include "bounding/protocol.h"
#include "bounding/secret.h"
#include "cluster/centralized_tconn.h"
#include "cluster/distributed_tconn.h"
#include "data/generators.h"
#include "graph/hierarchy.h"
#include "graph/wpg_builder.h"
#include "sim/scenario.h"
#include "spatial/grid_index.h"
#include "util/rng.h"

namespace {

const nela::sim::Scenario& SharedScenario(uint32_t users) {
  static auto* cache =
      new std::vector<std::pair<uint32_t, nela::sim::Scenario>>();
  for (auto& [count, scenario] : *cache) {
    if (count == users) return scenario;
  }
  nela::sim::ScenarioConfig config;
  config.user_count = users;
  config.delta = 2e-3 * std::sqrt(104770.0 / users);
  auto built = nela::sim::BuildScenario(config);
  NELA_CHECK(built.ok());
  cache->emplace_back(users, std::move(built).value());
  return cache->back().second;
}

void BM_WpgBuild(benchmark::State& state) {
  const uint32_t users = static_cast<uint32_t>(state.range(0));
  const nela::sim::Scenario& scenario = SharedScenario(users);
  nela::graph::WpgBuildParams params;
  params.delta = 2e-3 * std::sqrt(104770.0 / users);
  for (auto _ : state) {
    auto graph = nela::graph::BuildWpg(scenario.dataset, params);
    benchmark::DoNotOptimize(graph);
  }
  state.SetItemsProcessed(state.iterations() * users);
}
BENCHMARK(BM_WpgBuild)->Arg(5000)->Arg(20000);

void BM_HierarchyBuild(benchmark::State& state) {
  const nela::sim::Scenario& scenario =
      SharedScenario(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    nela::graph::TConnHierarchy hierarchy(scenario.graph);
    benchmark::DoNotOptimize(hierarchy.node_count());
  }
}
BENCHMARK(BM_HierarchyBuild)->Arg(5000)->Arg(20000);

void BM_CentralizedPartition(benchmark::State& state) {
  const nela::sim::Scenario& scenario =
      SharedScenario(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    auto partition =
        nela::cluster::CentralizedKClustering(scenario.graph, 10);
    benchmark::DoNotOptimize(partition.clusters.size());
  }
}
BENCHMARK(BM_CentralizedPartition)->Arg(5000)->Arg(20000);

void BM_DistributedClusterRequest(benchmark::State& state) {
  const nela::sim::Scenario& scenario = SharedScenario(20000);
  nela::util::Rng rng(11);
  for (auto _ : state) {
    // Fresh registry per request: measures a first (uncached) request.
    nela::cluster::Registry registry(scenario.dataset.size());
    nela::cluster::DistributedTConnClusterer clusterer(scenario.graph, 10,
                                                       &registry);
    const auto host = static_cast<nela::graph::VertexId>(
        rng.NextUint64(scenario.dataset.size()));
    auto outcome = clusterer.ClusterFor(host);
    benchmark::DoNotOptimize(outcome.ok());
  }
}
BENCHMARK(BM_DistributedClusterRequest);

void BM_GridRadiusQuery(benchmark::State& state) {
  const nela::sim::Scenario& scenario = SharedScenario(20000);
  const nela::spatial::GridIndex index(scenario.dataset.points(), 5e-3);
  nela::util::Rng rng(13);
  for (auto _ : state) {
    const auto id =
        static_cast<uint32_t>(rng.NextUint64(scenario.dataset.size()));
    auto result = index.RadiusQuery(scenario.dataset.point(id), 5e-3, id);
    benchmark::DoNotOptimize(result.size());
  }
}
BENCHMARK(BM_GridRadiusQuery);

void BM_SecureBoundingRun(benchmark::State& state) {
  nela::util::Rng rng(17);
  const double extent = 0.01;
  std::vector<double> values;
  for (int i = 0; i < 20; ++i) values.push_back(rng.NextDouble(0, extent));
  const auto secrets = nela::bounding::MakePrivate(values);
  const nela::bounding::UniformDistribution model(extent);
  const nela::bounding::QuadraticCost cost(1000.0 * 104770.0);
  for (auto _ : state) {
    nela::bounding::SecureIncrementPolicy policy(model, cost, 1.0);
    auto run =
        nela::bounding::RunProgressiveUpperBounding(secrets, 0.0, policy)
            .value();
    benchmark::DoNotOptimize(run.bound);
  }
}
BENCHMARK(BM_SecureBoundingRun);

}  // namespace

BENCHMARK_MAIN();
