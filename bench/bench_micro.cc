// Hot-path microbenchmarks (google-benchmark): WPG construction (sequential
// reference and parallel sweep), merge hierarchy, centralized partition, one
// distributed clustering request, spatial index queries, and a secure
// bounding run.
//
// BM_WpgBuild sweeps users x threads (up to 10^6 users) and the custom
// main() below writes the per-configuration best build times — plus
// per-phase wall/CPU attribution and speedups against the sequential
// reference — to BENCH_wpg.json (path overridable via NELA_BENCH_WPG_JSON).
// See DESIGN.md, "Performance architecture", for how to read the file.
//
// The binary also self-checks the allocation-free contract of
// GridIndex::RadiusQueryInto before running any benchmark: with warm scratch
// buffers, the per-vertex radius-query hot loop must not touch the heap.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "bounding/increment_policy.h"
#include "bounding/protocol.h"
#include "bounding/secret.h"
#include "cluster/centralized_tconn.h"
#include "cluster/distributed_tconn.h"
#include "data/generators.h"
#include "graph/hierarchy.h"
#include "graph/wpg_builder.h"
#include "sim/scenario.h"
#include "spatial/grid_index.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

// ------------------------------------------------------- allocation counter
//
// Global operator new/delete overrides: when armed, every heap allocation
// bumps a counter. Used to prove the radius-query hot loop is allocation
// free once its scratch buffers are warm.

namespace {
std::atomic<bool> g_count_allocations{false};
std::atomic<uint64_t> g_allocation_count{0};
}  // namespace

// GCC's -Wmismatched-new-delete pairing heuristic cannot see that this
// replacement operator new is malloc-backed, so freeing in operator delete
// is correct; silence it for the replacement block only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace {

class AllocationProbe {
 public:
  AllocationProbe() {
    g_allocation_count.store(0, std::memory_order_relaxed);
    g_count_allocations.store(true, std::memory_order_relaxed);
  }
  ~AllocationProbe() { g_count_allocations.store(false); }
  uint64_t count() const {
    return g_allocation_count.load(std::memory_order_relaxed);
  }
};

// ---------------------------------------------------------- shared fixtures

double PaperDelta(uint32_t users) {
  // Keeps the expected neighborhood size at the paper's delta = 2e-3,
  // |D| = 104,770 operating point as the population shrinks.
  return 2e-3 * std::sqrt(104770.0 / users);
}

// Bounded scenario cache, keyed by user count. Benchmarks revisit the same
// few populations many times; an unbounded cache (the old version appended
// every distinct count forever) leaks whole scenarios in sweep binaries, so
// evict least-recently-used beyond a small capacity.
const nela::sim::Scenario& SharedScenario(uint32_t users) {
  struct Entry {
    uint32_t users;
    std::unique_ptr<nela::sim::Scenario> scenario;
  };
  constexpr size_t kCapacity = 3;
  static auto* cache = new std::deque<Entry>();
  for (auto it = cache->begin(); it != cache->end(); ++it) {
    if (it->users == users) {
      // Move to front (most recently used).
      Entry hit = std::move(*it);
      cache->erase(it);
      cache->push_front(std::move(hit));
      return *cache->front().scenario;
    }
  }
  nela::sim::ScenarioConfig config;
  config.user_count = users;
  config.delta = PaperDelta(users);
  auto built = nela::sim::BuildScenario(config);
  NELA_CHECK(built.ok());
  cache->push_front(Entry{
      users, std::make_unique<nela::sim::Scenario>(std::move(built).value())});
  while (cache->size() > kCapacity) cache->pop_back();
  return *cache->front().scenario;
}

// Datasets for build benchmarks: BM_WpgBuild only needs the points (it
// builds the graph itself), so caching full scenarios — whose construction
// builds a throwaway WPG — would double the setup cost at 10^5 users.
const nela::data::Dataset& SharedDataset(uint32_t users) {
  constexpr size_t kCapacity = 3;
  static auto* cache =
      new std::deque<std::pair<uint32_t, nela::data::Dataset>>();
  for (auto it = cache->begin(); it != cache->end(); ++it) {
    if (it->first == users) {
      auto hit = std::move(*it);
      cache->erase(it);
      cache->push_front(std::move(hit));
      return cache->front().second;
    }
  }
  nela::util::Rng rng(42);
  nela::data::RoadNetworkParams shape;
  shape.count = users;
  cache->emplace_front(users, nela::data::GenerateRoadNetwork(shape, rng));
  while (cache->size() > kCapacity) cache->pop_back();
  return cache->front().second;
}

// ------------------------------------------------- WPG build perf recorder

struct WpgSample {
  uint32_t users;
  uint32_t threads;  // 0 = sequential reference implementation
  double best_seconds;           // wall clock
  double best_cpu_seconds;       // caller-thread CPU (~ total work / threads)
  double critical_path_seconds;  // schedule span (= wall for serial rows)
  // Phase attribution from the best-wall iteration (empty for threads=0).
  nela::graph::WpgBuildStats stats;
};

std::vector<WpgSample>& WpgSamples() {
  static auto* samples = new std::vector<WpgSample>();
  return *samples;
}

void RecordWpgSample(const WpgSample& sample) {
  for (WpgSample& s : WpgSamples()) {
    if (s.users == sample.users && s.threads == sample.threads) {
      if (sample.best_seconds < s.best_seconds) {
        s.best_seconds = sample.best_seconds;
        s.stats = sample.stats;
      }
      s.best_cpu_seconds =
          std::min(s.best_cpu_seconds, sample.best_cpu_seconds);
      s.critical_path_seconds =
          std::min(s.critical_path_seconds, sample.critical_path_seconds);
      return;
    }
  }
  WpgSamples().push_back(sample);
}

const WpgSample* FindSample(uint32_t users, uint32_t threads) {
  for (const WpgSample& s : WpgSamples()) {
    if (s.users == users && s.threads == threads) return &s;
  }
  return nullptr;
}

// A row ran the builder's sequential-fallback path: no phase ever woke the
// pool, so all such rows of one size executed identical code.
bool IsFallbackRow(const WpgSample& s) {
  return s.threads >= 1 &&
         s.users < nela::graph::kWpgSequentialFallbackUsers;
}

// The wall time a speedup may honestly be computed from. `threads` <=
// `cores`: the measured wall clock. `threads` > `cores`: workers
// time-slice cores, so measured wall cannot scale no matter what the
// scheduler does — use the critical path (per phase: serial wall +
// busiest worker's CPU), which is the wall a machine with >= `threads`
// free cores would see. Fallback rows share one measurement (see
// WriteWpgBenchJson), since they ran the same sequential code.
double EffectiveSeconds(const WpgSample& s, uint32_t cores) {
  return s.threads > cores ? s.critical_path_seconds : s.best_seconds;
}

const char* WallMode(const WpgSample& s, uint32_t cores) {
  if (IsFallbackRow(s)) return "sequential-fallback";
  return s.threads > cores ? "critical-path" : "measured";
}

// Writes the users x threads sweep as JSON. Schema:
//   {"benchmark":"BM_WpgBuild","cores":..,"sequential_fallback_users":..,
//    "entries":[{"users":..,"threads":..,"best_seconds":..,
//     "best_cpu_seconds":..,"critical_path_seconds":..,"wall_mode":..,
//     "effective_seconds":..,"speedup_vs_reference":..,
//     "speedup_vs_1thread":..,"measured_speedup_vs_1thread":..,
//     "cpu_speedup_vs_reference":..,"phases":{<name>:{"wall":..,
//     "serial":..,"cpu":..,"max_worker_cpu":..,"chunks":..,"steals":..,
//     "dispatched":..}}}]}
// threads = 0 rows are the sequential reference builds. `speedup_*`
// columns are computed from `effective_seconds` (the per-row `wall_mode`
// says what that is — "measured" wall when threads <= cores, the
// critical-path span when the runner has fewer cores than workers, and a
// shared measurement for sequential-fallback rows, which by construction
// score exactly 1.0 vs 1 thread). `measured_speedup_vs_1thread` keeps
// the raw wall ratio so core-starved runs stay visible rather than
// laundered. See DESIGN.md, "Performance architecture".
void WriteWpgBenchJson() {
  if (WpgSamples().empty()) return;
  const char* env_path = std::getenv("NELA_BENCH_WPG_JSON");
  const std::string path = env_path != nullptr ? env_path : "BENCH_wpg.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_micro: cannot write %s\n", path.c_str());
    return;
  }
  const uint32_t cores = nela::util::ThreadPool::DefaultThreadCount();
  std::stable_sort(WpgSamples().begin(), WpgSamples().end(),
                   [](const WpgSample& a, const WpgSample& b) {
                     return a.users != b.users ? a.users < b.users
                                               : a.threads < b.threads;
                   });
  // Fallback rows of one size ran identical sequential code; give them a
  // shared best so timer noise cannot masquerade as a thread-count effect.
  for (WpgSample& s : WpgSamples()) {
    if (!IsFallbackRow(s)) continue;
    for (const WpgSample& other : WpgSamples()) {
      if (other.users == s.users && IsFallbackRow(other)) {
        s.best_seconds = std::min(s.best_seconds, other.best_seconds);
        s.critical_path_seconds =
            std::min(s.critical_path_seconds, other.critical_path_seconds);
      }
    }
  }
  std::fprintf(f,
               "{\n  \"benchmark\": \"BM_WpgBuild\",\n  \"cores\": %u,\n"
               "  \"sequential_fallback_users\": %u,\n  \"entries\": [\n",
               cores, nela::graph::kWpgSequentialFallbackUsers);
  for (size_t i = 0; i < WpgSamples().size(); ++i) {
    const WpgSample& s = WpgSamples()[i];
    const WpgSample* reference = FindSample(s.users, 0);
    const WpgSample* one_thread = FindSample(s.users, 1);
    const double eff = EffectiveSeconds(s, cores);
    const double ref_eff =
        reference != nullptr ? EffectiveSeconds(*reference, cores) : 0;
    const double ref_cpu =
        reference != nullptr ? reference->best_cpu_seconds : 0;
    const double one_eff =
        one_thread != nullptr ? EffectiveSeconds(*one_thread, cores) : 0;
    const double one_wall =
        one_thread != nullptr ? one_thread->best_seconds : 0;
    std::fprintf(
        f,
        "    {\"users\": %u, \"threads\": %u, \"best_seconds\": %.6f, "
        "\"best_cpu_seconds\": %.6f, \"critical_path_seconds\": %.6f, "
        "\"wall_mode\": \"%s\", \"effective_seconds\": %.6f, "
        "\"speedup_vs_reference\": %.3f, \"speedup_vs_1thread\": %.3f, "
        "\"measured_speedup_vs_1thread\": %.3f, "
        "\"cpu_speedup_vs_reference\": %.3f",
        s.users, s.threads, s.best_seconds, s.best_cpu_seconds,
        s.critical_path_seconds, WallMode(s, cores), eff,
        eff > 0 && ref_eff > 0 ? ref_eff / eff : 0.0,
        eff > 0 && one_eff > 0 ? one_eff / eff : 0.0,
        s.best_seconds > 0 && one_wall > 0 ? one_wall / s.best_seconds : 0.0,
        s.best_cpu_seconds > 0 && ref_cpu > 0 ? ref_cpu / s.best_cpu_seconds
                                              : 0.0);
    if (!s.stats.phases.empty()) {
      std::fprintf(f, ",\n     \"phases\": {");
      for (size_t p = 0; p < s.stats.phases.size(); ++p) {
        const nela::graph::WpgPhaseStats& ph = s.stats.phases[p];
        std::fprintf(f,
                     "%s\n      \"%s\": {\"wall\": %.6f, \"serial\": %.6f, "
                     "\"cpu\": %.6f, \"max_worker_cpu\": %.6f, "
                     "\"chunks\": %llu, \"steals\": %llu, "
                     "\"dispatched\": %s}",
                     p == 0 ? "" : ",", ph.name.c_str(), ph.wall_seconds,
                     ph.serial_seconds, ph.cpu_seconds,
                     ph.max_worker_cpu_seconds,
                     static_cast<unsigned long long>(ph.chunks),
                     static_cast<unsigned long long>(ph.steals),
                     ph.dispatched ? "true" : "false");
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "}%s\n", i + 1 < WpgSamples().size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "bench_micro: wrote %s\n", path.c_str());
}

// ---------------------------------------------------------------- WPG build

void BM_WpgBuild(benchmark::State& state) {
  const uint32_t users = static_cast<uint32_t>(state.range(0));
  const uint32_t threads = static_cast<uint32_t>(state.range(1));
  const nela::data::Dataset& dataset = SharedDataset(users);
  nela::graph::WpgBuildParams params;
  params.delta = PaperDelta(users);
  params.threads = threads;
  WpgSample sample;
  sample.users = users;
  sample.threads = threads;
  sample.best_seconds = 1e100;
  sample.best_cpu_seconds = 1e100;
  sample.critical_path_seconds = 1e100;
  for (auto _ : state) {
    const nela::util::WallTimer wall;
    const double cpu_start = nela::util::ThreadCpuSeconds();
    nela::graph::WpgBuildStats stats;
    auto graph = threads == 0
                     ? nela::graph::BuildWpgReference(dataset, params)
                     : nela::graph::BuildWpg(dataset, params, nullptr, &stats);
    const double cpu = nela::util::ThreadCpuSeconds() - cpu_start;
    const double elapsed = wall.ElapsedSeconds();
    sample.best_cpu_seconds = std::min(sample.best_cpu_seconds, cpu);
    // For the serial reference the schedule span IS the wall clock.
    sample.critical_path_seconds =
        std::min(sample.critical_path_seconds,
                 threads == 0 ? elapsed : stats.CriticalPathSeconds());
    if (elapsed < sample.best_seconds) {
      sample.best_seconds = elapsed;
      sample.stats = stats;
    }
    benchmark::DoNotOptimize(graph);
  }
  RecordWpgSample(sample);
  state.SetItemsProcessed(state.iterations() * users);
  state.counters["threads"] = threads;
}
// threads = 0 runs BuildWpgReference (the sequential baseline the speedup
// column is computed against); 1..8 run the parallel pipeline. The 10^6
// row is the ROADMAP scale target; its per-phase columns show where the
// build spends its time as n grows.
BENCHMARK(BM_WpgBuild)
    ->ArgsProduct({{5000, 20000, 100000, 1000000}, {0, 1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

// ----------------------------------------------------------- other hot paths

void BM_HierarchyBuild(benchmark::State& state) {
  const nela::sim::Scenario& scenario =
      SharedScenario(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    nela::graph::TConnHierarchy hierarchy(scenario.graph);
    benchmark::DoNotOptimize(hierarchy.node_count());
  }
}
BENCHMARK(BM_HierarchyBuild)->Arg(5000)->Arg(20000);

void BM_CentralizedPartition(benchmark::State& state) {
  const nela::sim::Scenario& scenario =
      SharedScenario(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    auto partition =
        nela::cluster::CentralizedKClustering(scenario.graph, 10);
    benchmark::DoNotOptimize(partition.clusters.size());
  }
}
BENCHMARK(BM_CentralizedPartition)->Arg(5000)->Arg(20000);

void BM_DistributedClusterRequest(benchmark::State& state) {
  const nela::sim::Scenario& scenario = SharedScenario(20000);
  nela::util::Rng rng(11);
  for (auto _ : state) {
    // Fresh registry per request: measures a first (uncached) request.
    nela::cluster::Registry registry(scenario.dataset.size());
    nela::cluster::DistributedTConnClusterer clusterer(scenario.graph, 10,
                                                       &registry);
    const auto host = static_cast<nela::graph::VertexId>(
        rng.NextUint64(scenario.dataset.size()));
    auto outcome = clusterer.ClusterFor(host);
    benchmark::DoNotOptimize(outcome.ok());
  }
}
BENCHMARK(BM_DistributedClusterRequest);

void BM_GridRadiusQuery(benchmark::State& state) {
  const nela::sim::Scenario& scenario = SharedScenario(20000);
  const nela::spatial::GridIndex index(scenario.dataset.points(), 5e-3);
  nela::util::Rng rng(13);
  for (auto _ : state) {
    const auto id =
        static_cast<uint32_t>(rng.NextUint64(scenario.dataset.size()));
    auto result = index.RadiusQuery(scenario.dataset.point(id), 5e-3, id);
    benchmark::DoNotOptimize(result.size());
  }
}
BENCHMARK(BM_GridRadiusQuery);

void BM_GridRadiusQueryInto(benchmark::State& state) {
  // The allocation-free variant the parallel WPG builder fans out; compare
  // against BM_GridRadiusQuery to see what the allocating API costs.
  const nela::sim::Scenario& scenario = SharedScenario(20000);
  const nela::spatial::GridIndex index(scenario.dataset.points(), 5e-3);
  nela::util::Rng rng(13);
  nela::spatial::GridIndex::QueryScratch scratch;
  std::vector<uint32_t> out;
  out.reserve(4096);
  for (auto _ : state) {
    const auto id =
        static_cast<uint32_t>(rng.NextUint64(scenario.dataset.size()));
    out.clear();
    const uint32_t found =
        index.RadiusQueryInto(scenario.dataset.point(id), 5e-3, id, &scratch,
                              &out);
    benchmark::DoNotOptimize(found);
  }
}
BENCHMARK(BM_GridRadiusQueryInto);

void BM_SecureBoundingRun(benchmark::State& state) {
  nela::util::Rng rng(17);
  const double extent = 0.01;
  std::vector<double> values;
  for (int i = 0; i < 20; ++i) values.push_back(rng.NextDouble(0, extent));
  const auto secrets = nela::bounding::MakePrivate(values);
  const nela::bounding::UniformDistribution model(extent);
  const nela::bounding::QuadraticCost cost(1000.0 * 104770.0);
  for (auto _ : state) {
    nela::bounding::SecureIncrementPolicy policy(model, cost, 1.0);
    auto run =
        nela::bounding::RunProgressiveUpperBounding(secrets, 0.0, policy)
            .value();
    benchmark::DoNotOptimize(run.bound);
  }
}
BENCHMARK(BM_SecureBoundingRun);

// ------------------------------------------------------ hot-loop self-check

// Proves the per-vertex radius-query hot loop allocates nothing once its
// buffers are warm — the property the parallel builder's phase 1 relies on.
// Runs before the benchmarks so a regression fails the bench smoke job.
void CheckRadiusQueryIntoIsAllocationFree() {
  nela::util::Rng rng(7);
  const nela::data::Dataset dataset =
      nela::data::GenerateUniform(5000, rng);
  const nela::spatial::GridIndex index(dataset.points(), 0.01);
  nela::spatial::GridIndex::QueryScratch scratch;
  std::vector<uint32_t> out;
  out.reserve(1u << 16);
  // Warm up: let scratch grow to its steady-state capacity.
  for (uint32_t q = 0; q < 200; ++q) {
    index.RadiusQueryInto(dataset.point(q), 0.012, q, &scratch, &out);
  }
  out.clear();
  const AllocationProbe probe;
  for (uint32_t q = 0; q < 2000; ++q) {
    index.RadiusQueryInto(dataset.point(q % 5000), 0.012, q % 5000, &scratch,
                          &out);
    if (out.size() > (1u << 15)) out.clear();
  }
  const uint64_t allocations = probe.count();
  NELA_CHECK(allocations == 0);
  std::fprintf(stderr,
               "bench_micro: RadiusQueryInto hot loop allocation check "
               "passed (0 allocations over 2000 warm queries)\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CheckRadiusQueryIntoIsAllocationFree();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  WriteWpgBenchJson();
  return 0;
}
