// Figure 13 (a-d): the four bounding algorithms under various k --
// bounding communication cost, request cost (as a ratio of the optimal
// bounding), total communication cost, and CPU time.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "sim/bounding_experiment.h"
#include "sim/scenario.h"
#include "util/csv.h"
#include "util/flags.h"

namespace {

using nela::sim::BoundingAlgorithm;

int Run(int argc, char** argv) {
  int64_t users = 104770;
  int64_t requests = 2000;
  double cb = 1.0;
  double cr = 1000.0;
  std::string output_dir = "bench_results";
  nela::util::FlagParser flags;
  flags.AddInt64("users", &users, "population size");
  flags.AddInt64("requests", &requests, "cloaking requests S");
  flags.AddDouble("cb", &cb, "per-verification cost Cb");
  flags.AddDouble("cr", &cr, "POI payload ratio Cr");
  flags.AddString("output_dir", &output_dir, "where CSVs are written");
  nela::util::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    return status.code() == nela::util::StatusCode::kOutOfRange ? 0 : 1;
  }

  std::printf("=== Fig. 13: bounding algorithms under various k ===\n");
  std::printf("users=%lld S=%lld Cb=%g Cr=%g\n\n",
              static_cast<long long>(users),
              static_cast<long long>(requests), cb, cr);

  nela::sim::ScenarioConfig scenario_config;
  scenario_config.user_count = static_cast<uint32_t>(users);
  auto scenario = nela::sim::BuildScenario(scenario_config);
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }

  nela::util::CsvWriter csv;
  csv.SetHeader({"k", "algorithm", "avg_bounding_cost", "avg_request_cost",
                 "avg_request_ratio", "avg_total_cost", "avg_cpu_ms"});
  nela::bench::PrintRow({"k", "algorithm", "bounding cost", "request ratio",
                         "total cost", "cpu (ms)"});
  nela::bench::PrintRule(6);
  for (uint32_t k : {5u, 10u, 20u, 30u, 40u, 50u}) {
    nela::sim::BoundingExperimentConfig config;
    config.k = k;
    config.requests = static_cast<uint32_t>(requests);
    config.params.cb = cb;
    config.params.cr = cr;
    config.params.density = static_cast<double>(users);
    auto result =
        nela::sim::RunBoundingExperiment(scenario.value(), config);
    if (!result.ok()) {
      std::fprintf(stderr, "experiment failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    for (int i = 0; i < nela::sim::kBoundingAlgorithmCount; ++i) {
      const auto algorithm = static_cast<BoundingAlgorithm>(i);
      const auto& row = result.value().of(algorithm);
      const char* name = nela::sim::BoundingAlgorithmName(algorithm);
      nela::bench::PrintRow(
          {std::to_string(k), name,
           nela::util::CsvWriter::Cell(row.avg_bounding_cost),
           nela::util::CsvWriter::Cell(row.avg_request_ratio),
           nela::util::CsvWriter::Cell(row.avg_total_cost),
           nela::util::CsvWriter::Cell(row.avg_cpu_ms)});
      csv.AddRow({std::to_string(k), name,
                  nela::util::CsvWriter::Cell(row.avg_bounding_cost),
                  nela::util::CsvWriter::Cell(row.avg_request_cost),
                  nela::util::CsvWriter::Cell(row.avg_request_ratio),
                  nela::util::CsvWriter::Cell(row.avg_total_cost),
                  nela::util::CsvWriter::Cell(row.avg_cpu_ms)});
    }
  }
  return nela::bench::EmitCsv(csv, output_dir, "fig13_bounding").ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
