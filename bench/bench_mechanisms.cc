// Comparative mechanism bench: every privacy mechanism (the paper's
// clustering+bounding scheme and the three baselines -- grid cloak,
// geo-indistinguishability, dummy locations) over dataset {uniform,
// clustered} x k, each campaign run with the adversary observer and the
// family's leak-contract checker on the wire. Per cell the paper-style
// columns come out side by side:
//
//   privacy  -- observer violations (must be 0), contract violations
//               (must be 0), declared exposures (grid cloak's upload
//               channel), and the tightest knowledge interval any
//               principal provably learned (-1 = nothing: the mechanism
//               never runs the bounding protocol);
//   utility  -- mean cloaked-region area / candidate probes per request,
//               mean POI candidates shipped back;
//   cost     -- mean LBS query cost (candidates x Cr) and wire messages
//               per request.
//
// Results go to stdout, <output_dir>/bench_mechanisms.csv, and the JSON
// summary <output_dir>/BENCH_mechanisms.json (path overridable via
// NELA_BENCH_MECHANISMS_JSON) for the CI bench-smoke artifact.

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "audit/leak_contract.h"
#include "bench/bench_common.h"
#include "mechanisms/comparative_driver.h"
#include "sim/scenario.h"
#include "util/csv.h"
#include "util/flags.h"

namespace {

struct MechanismSample {
  std::string mechanism;
  std::string dataset;
  uint32_t k = 0;
  nela::mechanisms::CampaignResult result;
};

// JSON has no infinity; the "never learned anything" sentinel is -1.
double JsonWidth(double width) { return std::isinf(width) ? -1.0 : width; }

void WriteMechanismsJson(const std::string& output_dir,
                         const std::vector<MechanismSample>& samples) {
  const char* env_path = std::getenv("NELA_BENCH_MECHANISMS_JSON");
  const std::string path =
      env_path != nullptr ? env_path : output_dir + "/BENCH_mechanisms.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_mechanisms: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"bench_mechanisms\",\n");
  std::fprintf(f, "  \"sweep\": [\n");
  for (size_t i = 0; i < samples.size(); ++i) {
    const MechanismSample& s = samples[i];
    const nela::mechanisms::CampaignResult& r = s.result;
    std::fprintf(
        f,
        "    {\"mechanism\": \"%s\", \"dataset\": \"%s\", \"k\": %u, "
        "\"requests\": %" PRIu64 ", \"satisfied\": %" PRIu64
        ", \"request_errors\": %" PRIu64 ", \"mean_region_area\": %.6g, "
        "\"mean_candidate_count\": %.3f, \"mean_query_cost\": %.1f, "
        "\"mean_messages\": %.2f, \"observer_violations\": %" PRIu64
        ", \"contract_violations\": %" PRIu64
        ", \"declared_exposures\": %" PRIu64
        ", \"tightest_learned_width\": %.6g, \"messages_on_wire\": %" PRIu64
        "}%s\n",
        s.mechanism.c_str(), s.dataset.c_str(), s.k, r.requests, r.satisfied,
        r.request_errors, r.mean_region_area, r.mean_candidate_count,
        r.mean_query_cost, r.mean_messages, r.observer_violations,
        r.contract_violations, r.declared_exposures,
        JsonWidth(r.tightest_learned_width), r.messages_on_wire,
        i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("  -> %s\n", path.c_str());
}

int Run(int argc, char** argv) {
  int64_t users = 1500;
  int64_t requests = 64;
  int64_t master_seed = 1;
  int64_t workload_seed = 7;
  double delta = 0.025;
  std::string output_dir = "bench_results";
  nela::util::FlagParser flags;
  flags.AddInt64("users", &users, "population size per dataset");
  flags.AddInt64("requests", &requests, "requests per campaign cell");
  flags.AddInt64("master_seed", &master_seed,
                 "seed of per-request RNG sub-streams");
  flags.AddInt64("workload_seed", &workload_seed,
                 "seed selecting which hosts issue requests");
  flags.AddDouble("delta", &delta,
                  "WPG proximity threshold of the cluster-bound family");
  flags.AddString("output_dir", &output_dir,
                  "where CSV/JSON results are written");
  int exit_code = 0;
  if (!nela::bench::ParseFlagsOrExit(flags, argc, argv, &exit_code)) {
    return exit_code;
  }

  std::printf("=== Mechanism comparison: family x dataset x k ===\n");
  std::printf("users=%lld requests=%lld delta=%.4f master_seed=%lld "
              "workload_seed=%lld\n\n",
              static_cast<long long>(users),
              static_cast<long long>(requests), delta,
              static_cast<long long>(master_seed),
              static_cast<long long>(workload_seed));

  nela::util::CsvWriter csv;
  csv.SetHeader({"mechanism", "dataset", "k", "requests", "satisfied",
                 "request_errors", "mean_region_area", "mean_candidate_count",
                 "mean_query_cost", "mean_messages", "observer_violations",
                 "contract_violations", "declared_exposures",
                 "tightest_learned_width", "messages_on_wire"});

  std::vector<MechanismSample> samples;
  for (const bool clustered : {false, true}) {
    nela::sim::ScenarioConfig scenario_config;
    scenario_config.user_count = static_cast<uint32_t>(users);
    scenario_config.delta = delta;
    scenario_config.clustered_dataset = clustered;
    auto scenario = nela::sim::BuildScenario(scenario_config);
    if (!scenario.ok()) {
      std::fprintf(stderr, "scenario failed: %s\n",
                   scenario.status().ToString().c_str());
      return 1;
    }
    const char* dataset_name = clustered ? "clustered" : "uniform";

    for (int family_index = 0;
         family_index < nela::audit::kMechanismFamilyCount; ++family_index) {
      const auto family =
          static_cast<nela::audit::MechanismFamily>(family_index);
      for (const uint32_t k : {2u, 5u, 10u}) {
        nela::mechanisms::CampaignConfig config;
        config.family = family;
        config.k = k;
        config.requests = static_cast<uint32_t>(requests);
        config.master_seed = static_cast<uint64_t>(master_seed);
        config.workload_seed = static_cast<uint64_t>(workload_seed);
        auto campaign = nela::mechanisms::RunCampaign(
            scenario.value().dataset, scenario.value().graph, config);
        if (!campaign.ok()) {
          std::fprintf(stderr, "campaign %s/%s/k=%u failed: %s\n",
                       nela::audit::MechanismFamilyName(family), dataset_name,
                       k, campaign.status().ToString().c_str());
          return 1;
        }
        const nela::mechanisms::CampaignResult& r = campaign.value();
        if (r.observer_violations != 0 || r.contract_violations != 0) {
          std::fprintf(stderr,
                       "AUDIT FAILURE %s/%s/k=%u: %" PRIu64
                       " observer + %" PRIu64 " contract violations\n",
                       r.mechanism.c_str(), dataset_name, k,
                       r.observer_violations, r.contract_violations);
          return 1;
        }
        std::printf(
            "%-14s %-9s k=%-3u satisfied=%3" PRIu64 "/%-3" PRIu64
            " area=%-9.3g candidates=%-7.2f cost=%-8.1f msgs=%-7.2f "
            "declared=%-4" PRIu64 " width=%.3g\n",
            r.mechanism.c_str(), dataset_name, k, r.satisfied, r.requests,
            r.mean_region_area, r.mean_candidate_count, r.mean_query_cost,
            r.mean_messages, r.declared_exposures,
            JsonWidth(r.tightest_learned_width));
        csv.AddRow({r.mechanism, dataset_name, std::to_string(k),
                    std::to_string(r.requests), std::to_string(r.satisfied),
                    std::to_string(r.request_errors),
                    std::to_string(r.mean_region_area),
                    std::to_string(r.mean_candidate_count),
                    std::to_string(r.mean_query_cost),
                    std::to_string(r.mean_messages),
                    std::to_string(r.observer_violations),
                    std::to_string(r.contract_violations),
                    std::to_string(r.declared_exposures),
                    std::to_string(JsonWidth(r.tightest_learned_width)),
                    std::to_string(r.messages_on_wire)});
        samples.push_back(MechanismSample{r.mechanism, dataset_name, k,
                                          campaign.value()});
      }
    }
  }

  if (!nela::bench::EmitCsv(csv, output_dir, "bench_mechanisms").ok()) {
    return 1;
  }
  WriteMechanismsJson(output_dir, samples);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
