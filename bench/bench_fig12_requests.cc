// Figure 12 (a, b): average communication cost and cloaked-region size of
// the three k-clustering algorithms as the number of requesting users S
// varies.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "sim/clustering_experiment.h"
#include "sim/scenario.h"
#include "util/csv.h"
#include "util/flags.h"

namespace {

using nela::sim::ClusteringAlgorithm;

int Run(int argc, char** argv) {
  int64_t users = 104770;
  int64_t k = 10;
  std::string output_dir = "bench_results";
  nela::util::FlagParser flags;
  flags.AddInt64("users", &users, "population size");
  flags.AddInt64("k", &k, "anonymity requirement");
  flags.AddString("output_dir", &output_dir, "where CSVs are written");
  int exit_code = 0;
  if (!nela::bench::ParseFlagsOrExit(flags, argc, argv, &exit_code)) {
    return exit_code;
  }

  std::printf("=== Fig. 12: performance under various # of requests ===\n");
  std::printf("users=%lld k=%lld (default M, delta)\n\n",
              static_cast<long long>(users), static_cast<long long>(k));

  std::optional<nela::sim::Scenario> scenario =
      nela::bench::BuildScenarioOrExit(static_cast<uint32_t>(users),
                                       &exit_code);
  if (!scenario.has_value()) return exit_code;

  nela::util::CsvWriter csv;
  csv.SetHeader({"S", "algorithm", "avg_comm_cost", "avg_cloaked_area"});
  nela::bench::PrintRow(
      {"S", "algorithm", "comm cost", "cloaked size (1e-4)"});
  nela::bench::PrintRule(4);
  const ClusteringAlgorithm algorithms[] = {
      ClusteringAlgorithm::kDistributedTConn, ClusteringAlgorithm::kKnn,
      ClusteringAlgorithm::kCentralizedTConn};
  for (uint32_t requests : {1000u, 2000u, 4000u, 8000u}) {
    for (ClusteringAlgorithm algorithm : algorithms) {
      nela::sim::ClusteringExperimentConfig config;
      config.k = static_cast<uint32_t>(k);
      config.requests = requests;
      auto result = nela::sim::RunClusteringExperiment(scenario.value(),
                                                       algorithm, config);
      if (!result.ok()) {
        std::fprintf(stderr, "experiment failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      const char* name = nela::sim::ClusteringAlgorithmName(algorithm);
      nela::bench::PrintRow(
          {std::to_string(requests), name,
           nela::util::CsvWriter::Cell(result.value().avg_comm_cost),
           nela::util::CsvWriter::Cell(result.value().avg_cloaked_area *
                                       1e4)});
      csv.AddRow({std::to_string(requests), name,
                  nela::util::CsvWriter::Cell(result.value().avg_comm_cost),
                  nela::util::CsvWriter::Cell(
                      result.value().avg_cloaked_area)});
    }
  }
  return nela::bench::EmitCsv(csv, output_dir, "fig12_requests").ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
