// Shard-scaling bench for the spatially sharded anonymizer service.
//
// Sweeps shard count x offered load and reports, per cell: throughput of
// the closed pipeline (requests/s over admitted work), the admission
// outcome mix, global and per-shard queue-wait percentiles, and the
// cross-shard handoff rate (fraction of successful claim acquisitions
// that touched more than one shard's coordinator). A digest check against
// the K=1 run guards every cell: a shard-count-dependent digest is a bench
// error, not a data point.
//
// Results go to stdout, <output_dir>/bench_shard_scaling.csv, and the JSON
// summary <output_dir>/BENCH_shard.json (path overridable via
// NELA_BENCH_SHARD_JSON) for the CI bench-smoke artifact.

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/policy_factory.h"
#include "sim/scenario.h"
#include "sim/sharded_service_driver.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/timer.h"

namespace {

struct ShardSample {
  uint32_t shards = 0;
  double load_multiplier = 0.0;  // 0 = closed batch (no queue model)
  uint64_t admitted = 0;
  uint64_t shed_queue_overflow = 0;
  uint64_t shed_deadline = 0;
  uint64_t cross_shard_clusters = 0;
  uint64_t cross_shard_handoffs = 0;
  double handoff_rate = 0.0;  // handoffs / admitted
  double requests_per_sec = 0.0;
  double p50_queue_wait_ms = 0.0;
  double p99_queue_wait_ms = 0.0;
  // Worst per-shard p99 queue wait -- the imbalance signal the global
  // percentile hides.
  double max_shard_p99_wait_ms = 0.0;
};

void WriteShardBenchJson(const std::string& output_dir,
                         const std::vector<ShardSample>& samples) {
  const char* env_path = std::getenv("NELA_BENCH_SHARD_JSON");
  const std::string path =
      env_path != nullptr ? env_path : output_dir + "/BENCH_shard.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_shard_scaling: cannot write %s\n",
                 path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"bench_shard_scaling\",\n");
  std::fprintf(f, "  \"sweep\": [\n");
  for (size_t i = 0; i < samples.size(); ++i) {
    const ShardSample& s = samples[i];
    std::fprintf(
        f,
        "    {\"shards\": %u, \"load_multiplier\": %.3f, "
        "\"admitted\": %" PRIu64 ", \"shed_queue_overflow\": %" PRIu64
        ", \"shed_deadline\": %" PRIu64 ", \"cross_shard_clusters\": %" PRIu64
        ", \"cross_shard_handoffs\": %" PRIu64 ", \"handoff_rate\": %.4f, "
        "\"requests_per_sec\": %.1f, \"p50_queue_wait_ms\": %.4f, "
        "\"p99_queue_wait_ms\": %.4f, \"max_shard_p99_wait_ms\": %.4f}%s\n",
        s.shards, s.load_multiplier, s.admitted, s.shed_queue_overflow,
        s.shed_deadline, s.cross_shard_clusters, s.cross_shard_handoffs,
        s.handoff_rate, s.requests_per_sec, s.p50_queue_wait_ms,
        s.p99_queue_wait_ms, s.max_shard_p99_wait_ms,
        i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("  -> %s\n", path.c_str());
}

int Run(int argc, char** argv) {
  int64_t users = 2000;
  int64_t k = 5;
  int64_t requests = 512;
  int64_t threads = 4;
  int64_t master_seed = 99;
  int64_t workload_seed = 17;
  double delta = 0.02;
  std::string output_dir = "bench_results";
  nela::util::FlagParser flags;
  flags.AddInt64("users", &users, "population size");
  flags.AddInt64("k", &k, "anonymity requirement");
  flags.AddInt64("requests", &requests, "workload size");
  flags.AddDouble("delta", &delta,
                  "WPG proximity threshold; wide enough by default that "
                  "clusters straddle shard boundaries");
  flags.AddInt64("threads", &threads, "worker threads / queue servers");
  flags.AddInt64("master_seed", &master_seed,
                 "seed of per-request RNG sub-streams");
  flags.AddInt64("workload_seed", &workload_seed,
                 "seed selecting which hosts issue requests");
  flags.AddString("output_dir", &output_dir,
                  "where CSV/JSON results are written");
  int exit_code = 0;
  if (!nela::bench::ParseFlagsOrExit(flags, argc, argv, &exit_code)) {
    return exit_code;
  }

  std::printf("=== Sharded service: shard count x offered load ===\n");
  std::printf("users=%lld k=%lld requests=%lld threads=%lld delta=%.4f "
              "master_seed=%lld workload_seed=%lld\n\n",
              static_cast<long long>(users), static_cast<long long>(k),
              static_cast<long long>(requests),
              static_cast<long long>(threads), delta,
              static_cast<long long>(master_seed),
              static_cast<long long>(workload_seed));

  nela::sim::ScenarioConfig scenario_config;
  scenario_config.user_count = static_cast<uint32_t>(users);
  scenario_config.delta = delta;
  scenario_config.seed = 11;
  auto scenario = nela::sim::BuildScenario(scenario_config);
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  const nela::core::BoundingParams params;

  std::error_code ec;
  std::filesystem::create_directories(output_dir, ec);  // best effort

  nela::util::CsvWriter csv;
  csv.SetHeader({"shards", "load_multiplier", "admitted",
                 "shed_queue_overflow", "shed_deadline",
                 "cross_shard_clusters", "cross_shard_handoffs",
                 "handoff_rate", "requests_per_sec", "p50_queue_wait_ms",
                 "p99_queue_wait_ms", "max_shard_p99_wait_ms"});

  const double service_time_ms = 1.0;
  const double sustainable_per_ms =
      static_cast<double>(threads) / service_time_ms;

  std::vector<ShardSample> samples;
  uint64_t reference_digest = 0;
  bool have_reference = false;

  nela::bench::PrintRow({"shards", "load_x", "admitted", "shed", "xshard",
                         "handoff", "req/s", "p99_wait", "worst_p99"});
  nela::bench::PrintRule(9);
  for (uint32_t shards : {1u, 4u, 16u}) {
    // multiplier 0 = closed batch; the rest exercise the queue model
    // around the sustainable rate.
    for (double multiplier : {0.0, 0.5, 1.0, 2.0}) {
      nela::sim::ShardedServiceConfig config;
      config.service.k = static_cast<uint32_t>(k);
      config.service.requests = static_cast<uint32_t>(requests);
      config.service.threads = static_cast<uint32_t>(threads);
      config.service.master_seed = static_cast<uint64_t>(master_seed);
      config.service.workload_seed = static_cast<uint64_t>(workload_seed);
      config.shards = shards;
      if (multiplier > 0.0) {
        config.service.offered_rate_per_ms =
            multiplier * sustainable_per_ms;
        config.service.service_time_ms = service_time_ms;
        config.service.queue_capacity = 32;
        config.service.deadline_ms = 8.0;
      }
      nela::sim::ShardedServiceDriver driver(
          scenario.value().dataset, scenario.value().graph,
          nela::core::MakeSecurePolicyFactory(params), config);
      auto run = driver.Run();
      if (!run.ok()) {
        std::fprintf(stderr, "sharded run failed at K=%u x%.1f: %s\n",
                     shards, multiplier, run.status().ToString().c_str());
        return 1;
      }
      const nela::sim::ShardedServiceResult& r = run.value();

      // Digest guard: closed-batch digests must be K-invariant.
      if (multiplier == 0.0) {
        if (!have_reference) {
          reference_digest = r.service.registry_digest;
          have_reference = true;
        } else if (r.service.registry_digest != reference_digest) {
          std::fprintf(stderr,
                       "digest diverged at K=%u: sharding changed what got "
                       "clustered\n",
                       shards);
          return 1;
        }
      }

      ShardSample sample;
      sample.shards = shards;
      sample.load_multiplier = multiplier;
      sample.admitted = r.service.admitted;
      sample.shed_queue_overflow = r.service.shed_queue_overflow;
      sample.shed_deadline = r.service.shed_deadline;
      sample.cross_shard_clusters = r.cross_shard_clusters;
      sample.cross_shard_handoffs = r.cross_shard_handoffs;
      sample.handoff_rate =
          r.service.admitted > 0
              ? static_cast<double>(r.cross_shard_handoffs) /
                    static_cast<double>(r.service.admitted)
              : 0.0;
      sample.requests_per_sec = r.service.requests_per_sec;
      sample.p50_queue_wait_ms = r.service.p50_queue_wait_ms;
      sample.p99_queue_wait_ms = r.service.p99_queue_wait_ms;
      for (const nela::sim::ShardRunStats& stats : r.shards) {
        if (stats.p99_queue_wait_ms > sample.max_shard_p99_wait_ms) {
          sample.max_shard_p99_wait_ms = stats.p99_queue_wait_ms;
        }
      }
      samples.push_back(sample);

      nela::bench::PrintRow(
          {std::to_string(shards), nela::util::CsvWriter::Cell(multiplier),
           std::to_string(sample.admitted),
           std::to_string(sample.shed_queue_overflow +
                          sample.shed_deadline),
           std::to_string(sample.cross_shard_clusters),
           nela::util::CsvWriter::Cell(sample.handoff_rate),
           nela::util::CsvWriter::Cell(sample.requests_per_sec),
           nela::util::CsvWriter::Cell(sample.p99_queue_wait_ms),
           nela::util::CsvWriter::Cell(sample.max_shard_p99_wait_ms)});
      csv.AddRow({std::to_string(shards),
                  nela::util::CsvWriter::Cell(multiplier),
                  std::to_string(sample.admitted),
                  std::to_string(sample.shed_queue_overflow),
                  std::to_string(sample.shed_deadline),
                  std::to_string(sample.cross_shard_clusters),
                  std::to_string(sample.cross_shard_handoffs),
                  nela::util::CsvWriter::Cell(sample.handoff_rate),
                  nela::util::CsvWriter::Cell(sample.requests_per_sec),
                  nela::util::CsvWriter::Cell(sample.p50_queue_wait_ms),
                  nela::util::CsvWriter::Cell(sample.p99_queue_wait_ms),
                  nela::util::CsvWriter::Cell(sample.max_shard_p99_wait_ms)});
    }
  }

  std::printf("\n");
  WriteShardBenchJson(output_dir, samples);
  return nela::bench::EmitCsv(csv, output_dir, "bench_shard_scaling").ok()
             ? 0
             : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
