// Batch throughput bench: the deterministic multi-threaded batch driver
// swept over worker-thread counts and batch sizes S. Per cell it reports
// requests/sec, wall-clock latency percentiles, and the contention profile
// (claim conflicts/wounds, speculation aborts/retries) -- plus the registry
// digest and reciprocity audit, which must agree across thread counts for
// the same S.

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/policy_factory.h"
#include "sim/batch_driver.h"
#include "sim/scenario.h"
#include "util/csv.h"
#include "util/flags.h"

namespace {

int Run(int argc, char** argv) {
  int64_t users = 20000;
  int64_t k = 5;
  int64_t master_seed = 99;
  int64_t workload_seed = 17;
  std::string output_dir = "bench_results";
  nela::util::FlagParser flags;
  flags.AddInt64("users", &users, "population size");
  flags.AddInt64("k", &k, "anonymity requirement");
  flags.AddInt64("master_seed", &master_seed,
                 "seed of per-request RNG sub-streams");
  flags.AddInt64("workload_seed", &workload_seed,
                 "seed selecting which hosts issue requests");
  flags.AddString("output_dir", &output_dir, "where CSVs are written");
  int exit_code = 0;
  if (!nela::bench::ParseFlagsOrExit(flags, argc, argv, &exit_code)) {
    return exit_code;
  }

  std::printf("=== Batch driver: throughput and contention, "
              "threads x S ===\n");
  std::printf("users=%lld k=%lld master_seed=%lld workload_seed=%lld\n\n",
              static_cast<long long>(users), static_cast<long long>(k),
              static_cast<long long>(master_seed),
              static_cast<long long>(workload_seed));

  std::optional<nela::sim::Scenario> scenario =
      nela::bench::BuildScenarioOrExit(static_cast<uint32_t>(users),
                                       &exit_code);
  if (!scenario.has_value()) return exit_code;

  const nela::core::BoundingParams params;
  nela::util::CsvWriter csv;
  csv.SetHeader({"threads", "S", "requests_per_sec", "wall_seconds",
                 "p50_latency_ms", "p99_latency_ms", "claim_conflicts",
                 "claim_wounds", "speculation_aborts", "speculation_retries",
                 "clusters_formed", "registry_digest", "reciprocity_ok"});
  nela::bench::PrintRow({"threads", "S", "req/sec", "p50 ms", "p99 ms",
                         "conflicts", "spec aborts", "digest"});
  nela::bench::PrintRule(8);
  for (int64_t requests : {256ll, 1024ll}) {
    for (uint32_t threads : {1u, 2u, 4u, 8u}) {
      nela::sim::BatchConfig config;
      config.k = static_cast<uint32_t>(k);
      config.requests = static_cast<uint32_t>(requests);
      config.threads = threads;
      config.master_seed = static_cast<uint64_t>(master_seed);
      config.workload_seed = static_cast<uint64_t>(workload_seed);
      nela::sim::BatchDriver driver(scenario->dataset, scenario->graph,
                                    nela::core::MakeSecurePolicyFactory(params),
                                    config);
      auto result = driver.Run();
      if (!result.ok()) {
        std::fprintf(stderr, "batch failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      const nela::sim::BatchResult& r = result.value();
      if (!r.reciprocity_ok) {
        std::fprintf(stderr,
                     "reciprocity violated at threads=%u S=%lld -- a user "
                     "landed in more than one cluster\n",
                     threads, static_cast<long long>(requests));
        return 1;
      }
      char digest[32];
      std::snprintf(digest, sizeof(digest), "%016" PRIx64,
                    r.registry_digest);
      nela::bench::PrintRow(
          {std::to_string(threads), std::to_string(requests),
           nela::util::CsvWriter::Cell(r.requests_per_sec),
           nela::util::CsvWriter::Cell(r.p50_latency_ms),
           nela::util::CsvWriter::Cell(r.p99_latency_ms),
           std::to_string(r.claim_conflicts),
           std::to_string(r.speculation_aborts), digest});
      csv.AddRow({std::to_string(threads), std::to_string(requests),
                  nela::util::CsvWriter::Cell(r.requests_per_sec),
                  nela::util::CsvWriter::Cell(r.wall_seconds),
                  nela::util::CsvWriter::Cell(r.p50_latency_ms),
                  nela::util::CsvWriter::Cell(r.p99_latency_ms),
                  std::to_string(r.claim_conflicts),
                  std::to_string(r.claim_wounds),
                  std::to_string(r.speculation_aborts),
                  std::to_string(r.speculation_retries),
                  std::to_string(r.clusters_formed), digest,
                  r.reciprocity_ok ? "1" : "0"});
    }
  }
  return nela::bench::EmitCsv(csv, output_dir, "batch_throughput").ok() ? 0
                                                                        : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
