// Recovery and admission bench for the crash-durable anonymizer service.
//
// Part 1 sweeps WAL length (via request count) with and without
// checkpointing and measures cold recovery: wall time to rebuild the
// registry from disk, records replayed vs skipped, and digest equality
// with the live pre-shutdown registry (a failed equality is a bench
// error, not a data point).
//
// Part 2 sweeps offered load around the sustainable rate (threads /
// service_time) and reports the admission outcome mix: admitted fraction,
// queue-overflow and deadline sheds, and queue-wait percentiles of the
// admitted population.
//
// Results go to stdout, <output_dir>/bench_recovery.csv, and the JSON
// summary <output_dir>/BENCH_service.json (path overridable via
// NELA_BENCH_SERVICE_JSON) for the CI bench-smoke artifact.

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/policy_factory.h"
#include "durability/recovery.h"
#include "sim/scenario.h"
#include "sim/service_driver.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/timer.h"

namespace {

struct RecoverySample {
  uint32_t requests = 0;
  uint32_t checkpoint_interval = 0;
  uint64_t wal_records = 0;
  uint64_t checkpoints_written = 0;
  uint64_t records_replayed = 0;
  uint64_t records_skipped = 0;
  double run_seconds = 0.0;
  double recovery_seconds = 0.0;
};

struct ShedSample {
  double load_multiplier = 0.0;
  double offered_rate_per_ms = 0.0;
  uint64_t admitted = 0;
  uint64_t shed_queue_overflow = 0;
  uint64_t shed_deadline = 0;
  double shed_fraction = 0.0;
  double p50_queue_wait_ms = 0.0;
  double p99_queue_wait_ms = 0.0;
};

void WriteServiceBenchJson(const std::string& output_dir,
                           const std::vector<RecoverySample>& recovery,
                           const std::vector<ShedSample>& shedding) {
  const char* env_path = std::getenv("NELA_BENCH_SERVICE_JSON");
  const std::string path =
      env_path != nullptr ? env_path : output_dir + "/BENCH_service.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_recovery: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"bench_recovery\",\n");
  std::fprintf(f, "  \"recovery\": [\n");
  for (size_t i = 0; i < recovery.size(); ++i) {
    const RecoverySample& s = recovery[i];
    std::fprintf(
        f,
        "    {\"requests\": %u, \"checkpoint_interval\": %u, "
        "\"wal_records\": %" PRIu64 ", \"checkpoints_written\": %" PRIu64
        ", \"records_replayed\": %" PRIu64 ", \"records_skipped\": %" PRIu64
        ", \"run_seconds\": %.6f, \"recovery_seconds\": %.6f}%s\n",
        s.requests, s.checkpoint_interval, s.wal_records,
        s.checkpoints_written, s.records_replayed, s.records_skipped,
        s.run_seconds, s.recovery_seconds,
        i + 1 < recovery.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"shedding\": [\n");
  for (size_t i = 0; i < shedding.size(); ++i) {
    const ShedSample& s = shedding[i];
    std::fprintf(
        f,
        "    {\"load_multiplier\": %.3f, \"offered_rate_per_ms\": %.3f, "
        "\"admitted\": %" PRIu64 ", \"shed_queue_overflow\": %" PRIu64
        ", \"shed_deadline\": %" PRIu64 ", \"shed_fraction\": %.4f, "
        "\"p50_queue_wait_ms\": %.4f, \"p99_queue_wait_ms\": %.4f}%s\n",
        s.load_multiplier, s.offered_rate_per_ms, s.admitted,
        s.shed_queue_overflow, s.shed_deadline, s.shed_fraction,
        s.p50_queue_wait_ms, s.p99_queue_wait_ms,
        i + 1 < shedding.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("  -> %s\n", path.c_str());
}

int Run(int argc, char** argv) {
  int64_t users = 2000;
  int64_t k = 5;
  int64_t threads = 4;
  int64_t master_seed = 99;
  int64_t workload_seed = 17;
  std::string output_dir = "bench_results";
  nela::util::FlagParser flags;
  flags.AddInt64("users", &users, "population size");
  flags.AddInt64("k", &k, "anonymity requirement");
  flags.AddInt64("threads", &threads, "worker threads / queue servers");
  flags.AddInt64("master_seed", &master_seed,
                 "seed of per-request RNG sub-streams");
  flags.AddInt64("workload_seed", &workload_seed,
                 "seed selecting which hosts issue requests");
  flags.AddString("output_dir", &output_dir,
                  "where CSV/JSON results and scratch WALs are written");
  int exit_code = 0;
  if (!nela::bench::ParseFlagsOrExit(flags, argc, argv, &exit_code)) {
    return exit_code;
  }

  std::printf("=== Crash-durable service: recovery cost and load "
              "shedding ===\n");
  std::printf("users=%lld k=%lld threads=%lld master_seed=%lld "
              "workload_seed=%lld\n\n",
              static_cast<long long>(users), static_cast<long long>(k),
              static_cast<long long>(threads),
              static_cast<long long>(master_seed),
              static_cast<long long>(workload_seed));

  std::optional<nela::sim::Scenario> scenario =
      nela::bench::BuildScenarioOrExit(static_cast<uint32_t>(users),
                                       &exit_code);
  if (!scenario.has_value()) return exit_code;
  const nela::core::BoundingParams params;

  std::error_code ec;
  std::filesystem::create_directories(output_dir, ec);  // best effort

  nela::util::CsvWriter csv;
  csv.SetHeader({"section", "requests", "checkpoint_interval",
                 "wal_records", "checkpoints_written", "records_replayed",
                 "records_skipped", "run_seconds", "recovery_seconds",
                 "load_multiplier", "admitted", "shed_queue_overflow",
                 "shed_deadline", "p50_queue_wait_ms", "p99_queue_wait_ms"});

  // --- Part 1: recovery time vs WAL length -------------------------------
  std::vector<RecoverySample> recovery_samples;
  std::printf("--- recovery: replay cost vs WAL length ---\n");
  nela::bench::PrintRow({"requests", "ckpt_ival", "wal_records",
                         "replayed", "skipped", "recovery_s"});
  nela::bench::PrintRule(6);
  for (uint32_t requests : {64u, 256u, 512u}) {
    for (uint32_t interval : {0u, 32u}) {
      const std::string scratch = output_dir + "/recovery_scratch";
      std::filesystem::remove_all(scratch, ec);
      std::filesystem::create_directories(scratch, ec);

      nela::sim::ServiceConfig config;
      config.k = static_cast<uint32_t>(k);
      config.requests = requests;
      config.threads = static_cast<uint32_t>(threads);
      config.master_seed = static_cast<uint64_t>(master_seed);
      config.workload_seed = static_cast<uint64_t>(workload_seed);
      config.wal_path = scratch + "/wal.log";
      if (interval > 0) {
        config.checkpoint_dir = scratch;
        config.checkpoint_interval = interval;
      }
      nela::sim::ServiceDriver driver(
          scenario->dataset, scenario->graph,
          nela::core::MakeSecurePolicyFactory(params), config);
      const nela::util::WallTimer run_timer;
      auto result = driver.Run();
      if (!result.ok()) {
        std::fprintf(stderr, "service run failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      const double run_seconds = run_timer.ElapsedSeconds();

      nela::durability::RecoveryConfig recovery_config;
      recovery_config.wal_path = config.wal_path;
      recovery_config.checkpoint_dir = config.checkpoint_dir;
      recovery_config.user_count = static_cast<uint32_t>(users);
      nela::durability::RecoveryManager manager(recovery_config);
      const nela::util::WallTimer recovery_timer;
      auto recovered = manager.Recover();
      const double recovery_seconds = recovery_timer.ElapsedSeconds();
      if (!recovered.ok()) {
        std::fprintf(stderr, "recovery failed: %s\n",
                     recovered.status().ToString().c_str());
        return 1;
      }
      if (recovered.value().registry->Digest() !=
          result.value().registry_digest) {
        std::fprintf(stderr,
                     "recovered digest diverged from the live registry at "
                     "requests=%u interval=%u\n",
                     requests, interval);
        return 1;
      }

      RecoverySample sample;
      sample.requests = requests;
      sample.checkpoint_interval = interval;
      sample.wal_records = result.value().wal_records;
      sample.checkpoints_written = result.value().checkpoints_written;
      sample.records_replayed = recovered.value().records_replayed;
      sample.records_skipped = recovered.value().records_skipped;
      sample.run_seconds = run_seconds;
      sample.recovery_seconds = recovery_seconds;
      recovery_samples.push_back(sample);

      nela::bench::PrintRow(
          {std::to_string(requests), std::to_string(interval),
           std::to_string(sample.wal_records),
           std::to_string(sample.records_replayed),
           std::to_string(sample.records_skipped),
           nela::util::CsvWriter::Cell(recovery_seconds)});
      csv.AddRow({"recovery", std::to_string(requests),
                  std::to_string(interval),
                  std::to_string(sample.wal_records),
                  std::to_string(sample.checkpoints_written),
                  std::to_string(sample.records_replayed),
                  std::to_string(sample.records_skipped),
                  nela::util::CsvWriter::Cell(run_seconds),
                  nela::util::CsvWriter::Cell(recovery_seconds), "", "", "",
                  "", "", ""});
      std::filesystem::remove_all(scratch, ec);
    }
  }

  // --- Part 2: shed rate vs offered load ---------------------------------
  std::vector<ShedSample> shed_samples;
  const double service_time_ms = 1.0;
  const double sustainable_per_ms =
      static_cast<double>(threads) / service_time_ms;
  std::printf("\n--- admission: shed mix vs offered load (sustainable "
              "%.1f/ms) ---\n",
              sustainable_per_ms);
  nela::bench::PrintRow({"load_x", "admitted", "overflow", "deadline",
                         "shed_frac", "p99_wait_ms"});
  nela::bench::PrintRule(6);
  for (double multiplier : {0.5, 1.0, 2.0, 4.0}) {
    nela::sim::ServiceConfig config;
    config.k = static_cast<uint32_t>(k);
    config.requests = 512;
    config.threads = static_cast<uint32_t>(threads);
    config.master_seed = static_cast<uint64_t>(master_seed);
    config.workload_seed = static_cast<uint64_t>(workload_seed);
    config.offered_rate_per_ms = multiplier * sustainable_per_ms;
    config.service_time_ms = service_time_ms;
    config.queue_capacity = 32;
    config.deadline_ms = 8.0;
    nela::sim::ServiceDriver driver(
        scenario->dataset, scenario->graph,
        nela::core::MakeSecurePolicyFactory(params), config);
    auto result = driver.Run();
    if (!result.ok()) {
      std::fprintf(stderr, "service run failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const nela::sim::ServiceResult& r = result.value();

    ShedSample sample;
    sample.load_multiplier = multiplier;
    sample.offered_rate_per_ms = config.offered_rate_per_ms;
    sample.admitted = r.admitted;
    sample.shed_queue_overflow = r.shed_queue_overflow;
    sample.shed_deadline = r.shed_deadline;
    sample.shed_fraction =
        static_cast<double>(r.shed_queue_overflow + r.shed_deadline) /
        static_cast<double>(config.requests);
    sample.p50_queue_wait_ms = r.p50_queue_wait_ms;
    sample.p99_queue_wait_ms = r.p99_queue_wait_ms;
    shed_samples.push_back(sample);

    nela::bench::PrintRow(
        {nela::util::CsvWriter::Cell(multiplier),
         std::to_string(r.admitted), std::to_string(r.shed_queue_overflow),
         std::to_string(r.shed_deadline),
         nela::util::CsvWriter::Cell(sample.shed_fraction),
         nela::util::CsvWriter::Cell(r.p99_queue_wait_ms)});
    csv.AddRow({"shedding", std::to_string(config.requests), "", "", "", "",
                "", "", "", nela::util::CsvWriter::Cell(multiplier),
                std::to_string(r.admitted),
                std::to_string(r.shed_queue_overflow),
                std::to_string(r.shed_deadline),
                nela::util::CsvWriter::Cell(r.p50_queue_wait_ms),
                nela::util::CsvWriter::Cell(r.p99_queue_wait_ms)});
  }

  std::printf("\n");
  WriteServiceBenchJson(output_dir, recovery_samples, shed_samples);
  return nela::bench::EmitCsv(csv, output_dir, "bench_recovery").ok() ? 0
                                                                      : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
