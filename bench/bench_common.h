// Shared plumbing for the figure-reproduction benches: flag definitions,
// stdout table formatting, and CSV emission.

#ifndef NELA_BENCH_BENCH_COMMON_H_
#define NELA_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>

#include <filesystem>
#include <string>
#include <vector>

#include "util/csv.h"
#include "util/status.h"

namespace nela::bench {

// Writes `csv` to <output_dir>/<name>.csv (best effort; a failure is
// reported but does not abort the bench).
inline void EmitCsv(const util::CsvWriter& csv, const std::string& output_dir,
                    const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories(output_dir, ec);  // best effort
  const std::string path = output_dir + "/" + name + ".csv";
  util::Status status = csv.WriteToFile(path);
  if (status.ok()) {
    std::printf("  -> %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "  (csv not written: %s)\n",
                 status.ToString().c_str());
  }
}

// Prints a row of cells with fixed column width; numeric cells are
// reformatted to 5 significant digits for readability (the CSVs keep full
// precision).
inline void PrintRow(const std::vector<std::string>& cells) {
  for (const std::string& cell : cells) {
    char* end = nullptr;
    const double value = std::strtod(cell.c_str(), &end);
    if (end != cell.c_str() && end != nullptr && *end == '\0') {
      std::printf("%-22.5g", value);
    } else {
      std::printf("%-22s", cell.c_str());
    }
  }
  std::printf("\n");
}

inline void PrintRule(size_t columns) {
  for (size_t i = 0; i < columns * 22; ++i) std::printf("-");
  std::printf("\n");
}

}  // namespace nela::bench

#endif  // NELA_BENCH_BENCH_COMMON_H_
