// Shared plumbing for the figure-reproduction benches: flag definitions,
// scenario setup, stdout table formatting, and CSV emission.

#ifndef NELA_BENCH_BENCH_COMMON_H_
#define NELA_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>

#include <filesystem>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/scenario.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/status.h"

namespace nela::bench {

// Parses the registered flags. On failure, sets *exit_code (0 for --help,
// 1 for a real parse error) and returns false; the bench should return
// *exit_code immediately.
inline bool ParseFlagsOrExit(util::FlagParser& flags, int argc, char** argv,
                             int* exit_code) {
  const util::Status status = flags.Parse(argc, argv);
  if (status.ok()) return true;
  *exit_code = status.code() == util::StatusCode::kOutOfRange ? 0 : 1;
  return false;
}

// Builds the standard scenario for `user_count` users, reporting failures
// to stderr. On failure, sets *exit_code to 1 and returns nullopt.
inline std::optional<sim::Scenario> BuildScenarioOrExit(uint32_t user_count,
                                                        int* exit_code) {
  sim::ScenarioConfig config;
  config.user_count = user_count;
  auto scenario = sim::BuildScenario(config);
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 scenario.status().ToString().c_str());
    *exit_code = 1;
    return std::nullopt;
  }
  return std::move(scenario).value();
}

// Writes `csv` to <output_dir>/<name>.csv and reports the destination (or
// the failure) on the console. Returns the write status so benches can
// propagate CSV emission failures as a nonzero exit code.
inline util::Status EmitCsv(const util::CsvWriter& csv,
                            const std::string& output_dir,
                            const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories(output_dir, ec);  // best effort
  const std::string path = output_dir + "/" + name + ".csv";
  util::Status status = csv.WriteToFile(path);
  if (status.ok()) {
    std::printf("  -> %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "  (csv not written: %s)\n",
                 status.ToString().c_str());
  }
  return status;
}

// Prints a row of cells with fixed column width; numeric cells are
// reformatted to 5 significant digits for readability (the CSVs keep full
// precision).
inline void PrintRow(const std::vector<std::string>& cells) {
  for (const std::string& cell : cells) {
    char* end = nullptr;
    const double value = std::strtod(cell.c_str(), &end);
    if (end != cell.c_str() && end != nullptr && *end == '\0') {
      std::printf("%-22.5g", value);
    } else {
      std::printf("%-22s", cell.c_str());
    }
  }
  std::printf("\n");
}

inline void PrintRule(size_t columns) {
  for (size_t i = 0; i < columns * 22; ++i) std::printf("-");
  std::printf("\n");
}

}  // namespace nela::bench

#endif  // NELA_BENCH_BENCH_COMMON_H_
