// Ablation: kNN baseline expansion strategies. The paper's narrative
// ("further span the WPG ... might be far away") implies hop-layered
// expansion; a Dijkstra over accumulated path weight uses the same
// information but picks spatially tighter members. This bench quantifies
// the difference in cloaked size and communication under depletion.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "cluster/knn_clustering.h"
#include "geo/rect.h"
#include "sim/scenario.h"
#include "sim/workload.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

struct RunResult {
  double avg_area = 0.0;
  double avg_comm = 0.0;
  uint32_t invalid = 0;
};

RunResult RunOnce(const nela::sim::Scenario& scenario, uint32_t k,
                  const std::vector<nela::data::UserId>& hosts,
                  nela::cluster::KnnExpansion expansion) {
  nela::cluster::Registry registry(scenario.dataset.size(),
                                   /*allow_overlap=*/true);
  nela::cluster::KnnClusterer clusterer(
      scenario.graph, k, &registry, nullptr,
      nela::cluster::KnnTieBreak::kVertexId,
      nela::cluster::KnnReuse::kAlwaysFresh, expansion);
  RunResult result;
  nela::util::OnlineStats area;
  nela::util::OnlineStats comm;
  for (nela::data::UserId host : hosts) {
    auto outcome = clusterer.ClusterFor(host);
    NELA_CHECK(outcome.ok());
    comm.Add(static_cast<double>(outcome.value().involved_users));
    const auto& info = registry.info(outcome.value().cluster_id);
    if (!info.valid) ++result.invalid;
    nela::geo::Rect box;
    for (auto member : info.members) {
      box.ExpandToInclude(scenario.dataset.point(member));
    }
    area.Add(box.Area());
  }
  result.avg_area = area.Mean();
  result.avg_comm = comm.Mean();
  return result;
}

int Run(int argc, char** argv) {
  int64_t users = 104770;
  int64_t k = 10;
  int64_t requests = 8000;  // deep depletion is where the two diverge
  std::string output_dir = "bench_results";
  nela::util::FlagParser flags;
  flags.AddInt64("users", &users, "population size");
  flags.AddInt64("k", &k, "anonymity requirement");
  flags.AddInt64("requests", &requests, "cloaking requests S");
  flags.AddString("output_dir", &output_dir, "where CSVs are written");
  nela::util::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    return status.code() == nela::util::StatusCode::kOutOfRange ? 0 : 1;
  }

  std::printf("=== Ablation: kNN expansion strategy under depletion ===\n");
  nela::sim::ScenarioConfig scenario_config;
  scenario_config.user_count = static_cast<uint32_t>(users);
  auto scenario = nela::sim::BuildScenario(scenario_config);
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  nela::util::Rng workload_rng(7);
  const auto hosts = nela::sim::SampleWorkload(
      scenario.value().dataset.size(), static_cast<uint32_t>(requests),
      workload_rng);

  nela::util::CsvWriter csv;
  csv.SetHeader({"expansion", "avg_area", "avg_comm_cost", "invalid"});
  nela::bench::PrintRow(
      {"expansion", "cloaked size (1e-4)", "comm cost", "invalid"});
  nela::bench::PrintRule(4);
  const struct {
    nela::cluster::KnnExpansion expansion;
    const char* name;
  } variants[] = {
      {nela::cluster::KnnExpansion::kHopLayered, "hop-layered"},
      {nela::cluster::KnnExpansion::kShortestPath, "shortest-path"},
  };
  for (const auto& variant : variants) {
    const RunResult result =
        RunOnce(scenario.value(), static_cast<uint32_t>(k), hosts,
                variant.expansion);
    nela::bench::PrintRow(
        {variant.name, nela::util::CsvWriter::Cell(result.avg_area * 1e4),
         nela::util::CsvWriter::Cell(result.avg_comm),
         std::to_string(result.invalid)});
    csv.AddRow({variant.name, nela::util::CsvWriter::Cell(result.avg_area),
                nela::util::CsvWriter::Cell(result.avg_comm),
                std::to_string(result.invalid)});
  }
  return nela::bench::EmitCsv(csv, output_dir, "ablation_knn_expansion").ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
