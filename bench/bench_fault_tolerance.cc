// Fault-tolerance bench: the robustness/overhead tradeoff of the cloaking
// pipeline. Sweeps message loss in {0%, 1%, 5%, 10%} crossed with churn
// rates, and reports per cell the request success rate, the traffic added
// by retransmissions, and the anonymity level actually achieved -- so a
// regression in either robustness or its bandwidth cost shows up in the
// tracked CSV.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "sim/chaos_experiment.h"
#include "sim/scenario.h"
#include "util/csv.h"
#include "util/flags.h"

namespace {

int Run(int argc, char** argv) {
  int64_t users = 20000;
  int64_t requests = 400;
  int64_t k = 10;
  int64_t fault_seed = 1234;
  int64_t churn_spacing = 2000;
  std::string output_dir = "bench_results";
  nela::util::FlagParser flags;
  flags.AddInt64("users", &users, "population size");
  flags.AddInt64("requests", &requests, "cloaking requests S");
  flags.AddInt64("k", &k, "anonymity requirement");
  flags.AddInt64("fault_seed", &fault_seed, "fault-injection seed");
  flags.AddInt64("churn_spacing", &churn_spacing,
                 "send attempts between scheduled crashes");
  flags.AddString("output_dir", &output_dir, "where CSVs are written");
  int exit_code = 0;
  if (!nela::bench::ParseFlagsOrExit(flags, argc, argv, &exit_code)) {
    return exit_code;
  }

  std::printf("=== Fault tolerance: success rate and retry overhead "
              "under loss x churn ===\n");
  std::printf("users=%lld S=%lld k=%lld fault_seed=%lld\n\n",
              static_cast<long long>(users),
              static_cast<long long>(requests), static_cast<long long>(k),
              static_cast<long long>(fault_seed));

  std::optional<nela::sim::Scenario> scenario =
      nela::bench::BuildScenarioOrExit(static_cast<uint32_t>(users),
                                       &exit_code);
  if (!scenario.has_value()) return exit_code;

  nela::util::CsvWriter csv;
  csv.SetHeader({"loss", "churn_rate", "success_rate", "succeeded",
                 "degraded", "failed", "retries", "retransmitted_bytes",
                 "dropped_messages", "dropped_bytes", "timed_out",
                 "dead_endpoint_attempts", "members_lost", "phases_retried",
                 "retry_overhead", "avg_achieved_anonymity",
                 "avg_region_area", "exposure_violations"});
  nela::bench::PrintRow({"loss", "churn", "success", "retries",
                         "retx bytes", "members lost", "anonymity"});
  nela::bench::PrintRule(7);
  for (double loss : {0.0, 0.01, 0.05, 0.10}) {
    for (double churn : {0.0, 0.001, 0.01}) {
      nela::sim::ChaosExperimentConfig config;
      config.k = static_cast<uint32_t>(k);
      config.requests = static_cast<uint32_t>(requests);
      config.fault_seed = static_cast<uint64_t>(fault_seed);
      config.loss_probability = loss;
      config.churn_rate = churn;
      config.churn_attempt_spacing = static_cast<uint64_t>(churn_spacing);
      auto result =
          nela::sim::RunChaosExperiment(scenario.value(), config);
      if (!result.ok()) {
        std::fprintf(stderr, "experiment failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      const nela::sim::ChaosExperimentResult& r = result.value();
      nela::bench::PrintRow(
          {nela::util::CsvWriter::Cell(loss),
           nela::util::CsvWriter::Cell(churn),
           nela::util::CsvWriter::Cell(r.success_rate),
           std::to_string(r.retries),
           std::to_string(r.retransmitted_bytes),
           std::to_string(r.members_lost),
           nela::util::CsvWriter::Cell(r.avg_achieved_anonymity)});
      csv.AddRow({nela::util::CsvWriter::Cell(loss),
                  nela::util::CsvWriter::Cell(churn),
                  nela::util::CsvWriter::Cell(r.success_rate),
                  std::to_string(r.succeeded), std::to_string(r.degraded),
                  std::to_string(r.failed), std::to_string(r.retries),
                  std::to_string(r.retransmitted_bytes),
                  std::to_string(r.dropped_messages),
                  std::to_string(r.dropped_bytes),
                  std::to_string(r.timed_out_messages),
                  std::to_string(r.dead_endpoint_attempts),
                  std::to_string(r.members_lost),
                  std::to_string(r.phases_retried),
                  nela::util::CsvWriter::Cell(r.retry_overhead),
                  nela::util::CsvWriter::Cell(r.avg_achieved_anonymity),
                  nela::util::CsvWriter::Cell(r.avg_region_area),
                  std::to_string(r.exposure_violations)});
    }
  }
  return nela::bench::EmitCsv(csv, output_dir, "fault_tolerance").ok() ? 0
                                                                       : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
